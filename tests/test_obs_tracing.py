"""Tests for the repro.obs event-tracing layer.

Covers the Tracer event/clock semantics, the ring buffer and sampling
bounds, the disabled-mode no-op path, worker merge (the process-pool
round trip), the ``repro.trace/1`` schema, and the end-to-end engine
instrumentation whose summaries the stall report folds.
"""

import pytest

from repro import obs
from repro.errors import ObsError
from repro.obs import NULL_TRACER, TRACE_SCHEMA, Tracer
from repro.obs.tracing import (
    load_trace,
    make_trace,
    trace_snapshot,
    validate_trace,
    write_trace,
)


@pytest.fixture(autouse=True)
def _tracing_off():
    """Each test starts and ends with tracing (and telemetry) disabled."""
    obs.disable_tracing()
    obs.disable()
    yield
    obs.disable_tracing()
    obs.disable()


class TestTracer:
    def test_span_instant_sample_recorded(self):
        tr = Tracer()
        tr.span("tmu.tg.layer0", "activation", 3, 4, {"n": 1})
        tr.instant("tmu.arbiter", "grant", args={"lane": 0})
        tr.sample("tmu.outq", "chunk_fill", 17)
        phases = [e[2] for e in tr.events]
        assert phases == ["X", "i", "C"]
        assert tr.events[0][:2] == [3, 4]
        assert tr.events[2][5] == {"value": 17}

    def test_clock_tick_and_alloc(self):
        tr = Tracer()
        assert tr.now == 0
        tr.tick()
        tr.tick(4)
        assert tr.now == 5
        start = tr.alloc(10)
        assert start == 5
        assert tr.now == 15

    def test_region_measures_on_the_virtual_clock(self):
        tr = Tracer()
        with tr.region("tmu.engine", "run"):
            tr.tick(7)
        ts, dur, phase, track, name, _ = tr.events[-1]
        assert (ts, dur, phase, track, name) == (0, 7, "X", "tmu.engine", "run")

    def test_ring_buffer_drops_oldest(self):
        tr = Tracer(capacity=3)
        for k in range(5):
            tr.instant("t", f"e{k}")
        assert len(tr.events) == 3
        assert tr.dropped == 2
        assert [e[4] for e in tr.events] == ["e2", "e3", "e4"]

    def test_sampling_decimates_instants_but_not_spans(self):
        tr = Tracer(sample_every=3)
        for _ in range(9):
            tr.instant("t", "i")
        for _ in range(4):
            tr.span("t", "s", 0, 1)
        names = [e[4] for e in tr.events]
        assert names.count("i") == 3
        assert names.count("s") == 4

    def test_merge_offsets_the_worker_timeline(self):
        parent = Tracer()
        parent.tick(100)
        worker = Tracer()
        worker.span("tmu.engine", "run", 0, 8)
        worker.tick(8)
        parent.merge(worker.as_dict())
        assert parent.events[-1][0] == 100
        assert parent.now == 108

    def test_merge_accumulates_dropped(self):
        parent = Tracer()
        parent.merge({"events": [], "dropped": 4, "ticks": 0})
        assert parent.dropped == 4

    @pytest.mark.parametrize("kwargs", [{"capacity": 0}, {"sample_every": 0}])
    def test_bad_construction_raises(self, kwargs):
        with pytest.raises(ObsError):
            Tracer(**kwargs)


class TestModuleSwitch:
    def test_disabled_hands_out_the_shared_null_tracer(self):
        assert not obs.tracing_enabled()
        assert obs.tracer() is NULL_TRACER
        assert not NULL_TRACER.enabled
        # the no-ops really are no-ops
        NULL_TRACER.tick(5)
        NULL_TRACER.span("t", "n", 0, 1)
        NULL_TRACER.instant("t", "n")
        NULL_TRACER.sample("t", "n", 1)
        with NULL_TRACER.region("t", "n"):
            pass
        assert NULL_TRACER.now == 0

    def test_enable_records_into_the_active_tracer(self):
        tr = obs.enable_tracing(sample_every=2)
        assert obs.tracer() is tr
        assert tr.sample_every == 2
        obs.disable_tracing()
        assert obs.active_tracer() is None

    def test_trace_capture_restores_previous_state(self):
        outer = obs.enable_tracing()
        with obs.trace_capture() as inner:
            obs.tracer().instant("t", "e")
            assert obs.active_tracer() is inner
        assert obs.active_tracer() is outer
        assert len(outer.events) == 0


class TestSchema:
    def _tracer(self):
        tr = Tracer(meta={"note": "test"})
        tr.span("tmu.engine", "run", 0, 5, {"iterations": 9})
        tr.tick(5)
        tr.instant("tmu.arbiter", "grant")
        return tr

    def test_round_trip(self, tmp_path):
        trace = make_trace(self._tracer(), meta={"scale": "small"})
        path = write_trace(trace, tmp_path / "t.json")
        loaded = load_trace(path)
        assert loaded["schema"] == TRACE_SCHEMA
        assert loaded["meta"]["note"] == "test"
        assert loaded["meta"]["scale"] == "small"
        assert loaded["ticks"] == 5
        assert loaded["events"] == [list(e) for e in self._tracer().events]

    def test_snapshot_while_disabled_is_schema_valid_and_empty(self):
        trace = trace_snapshot(meta={"note": "empty"})
        validate_trace(trace)
        assert trace["events"] == []
        assert trace["meta"]["note"] == "empty"

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(ObsError, match="not found"):
            load_trace(tmp_path / "nope.json")

    @pytest.mark.parametrize(
        "mutate, match",
        [
            (lambda t: t.update(schema="repro.trace/0"), "unsupported"),
            (lambda t: t.pop("created_unix"), "created_unix"),
            (lambda t: t.pop("meta"), "meta"),
            (lambda t: t.pop("ticks"), "ticks"),
            (lambda t: t.pop("events"), "events"),
            (lambda t: t["events"].append([0, 0]), "must be a"),
            (lambda t: t["events"].append([0, 0, "Z", "t", "n", None]), "phase"),
            (lambda t: t["events"].append(["x", 0, "i", "t", "n", None]), "ts"),
            (lambda t: t["events"].append([0, 0, "i", 7, "n", None]), "track"),
            (lambda t: t["events"].append([0, 0, "i", "t", "n", 3]), "args"),
        ],
    )
    def test_validation_catches_violations(self, mutate, match):
        trace = make_trace(self._tracer())
        mutate(trace)
        with pytest.raises(ObsError, match=match):
            validate_trace(trace)


def _two_layer_program(rows=3, cols_per_row=2):
    """A tiny dense row-by-row traversal (mirrors the engine tests)."""
    import numpy as np

    from repro.tmu.program import Event, LayerMode, Program

    prog = Program("nest", lanes=1)
    n = rows * cols_per_row
    data = prog.place_array(np.arange(float(n)), 8, "data")
    ptrs = prog.place_array(
        np.arange(rows + 1, dtype=np.int64) * cols_per_row, 4, "ptrs"
    )
    l0 = prog.add_layer(LayerMode.SINGLE)
    row = l0.dns_fbrt(beg=0, end=rows)
    beg = row.add_mem_stream(ptrs, name="beg")
    end = row.add_mem_stream(ptrs, offset=1, name="end")
    l0.add_callback(Event.GITE, "outer_ite", [])
    l1 = prog.add_layer(LayerMode.SINGLE)
    col = l1.rng_fbrt(beg=beg, end=end)
    val = col.add_mem_stream(data, name="val")
    l1.add_callback(Event.GITE, "inner_ite", [l1.vec_operand([val])])
    return prog


class TestEngineTracing:
    def _run_traced(self, **tracer_kwargs):
        from repro.tmu.engine import TmuEngine

        with obs.trace_capture(**tracer_kwargs) as tr:
            engine = TmuEngine(_two_layer_program())
            stats = engine.run()
        return tr, stats

    def _summaries(self, tr):
        return {
            (e[3], e[4]): e[5]
            for e in tr.events
            if e[2] == "X" and e[5] is not None
        }

    def test_summary_spans_agree_with_run_stats(self):
        tr, stats = self._run_traced()
        summaries = self._summaries(tr)
        run = summaries[("tmu.engine", "run")]
        assert run["iterations"] == stats.total_iterations
        assert run["records"] == stats.outq_records
        assert run["memory_lines"] == stats.memory_lines
        outq = summaries[("tmu.outq", "summary")]
        assert outq["records"] == stats.outq_records
        assert outq["chunks"] == stats.outq_chunks
        arb = summaries[("tmu.arbiter", "summary")]
        assert arb["touches"] == stats.memory_touches
        for idx in range(2):
            layer = summaries[(f"tmu.tg.layer{idx}", "layer_summary")]
            assert layer["iterations"] == stats.layer_iterations[idx]
            assert layer["merge_steps"] == stats.layer_merge_steps[idx]
            assert layer["activations"] == stats.layer_activations[idx]

    def test_clock_ticks_once_per_gite(self):
        tr, stats = self._run_traced()
        assert tr.now == stats.total_iterations

    def test_fiber_spans_per_tu(self):
        tr, stats = self._run_traced()
        fibers = [e for e in tr.events if e[2] == "X" and e[4] == "fiber"]
        # one outer fiber plus one inner fiber per outer row
        assert len(fibers) == 4
        inner = [e for e in fibers if e[3] == "tmu.tu.layer1.lane0"]
        assert sum(e[5]["iterations"] for e in inner) == stats.layer_iterations[1]

    def test_arbiter_grants_match_line_requests(self):
        tr, stats = self._run_traced()
        grants = [e for e in tr.events if e[4] == "grant"]
        assert len(grants) == stats.memory_lines

    def test_disabled_run_emits_nothing_and_matches_baseline(self):
        from repro.tmu.engine import TmuEngine

        engine = TmuEngine(_two_layer_program())
        stats = engine.run()
        assert not obs.tracing_enabled()
        assert stats.total_iterations == 9

    def test_summaries_survive_ring_buffer_pressure(self):
        tr, stats = self._run_traced(capacity=8)
        assert tr.dropped > 0
        summaries = self._summaries(tr)
        run = summaries[("tmu.engine", "run")]
        assert run["iterations"] == stats.total_iterations


class TestExecutorTraceMerge:
    def test_worker_trace_rides_back_and_merges(self):
        record = {"schema": 1, "results": {}}

        class FakeTask:
            def evaluate(self):
                tr = obs.tracer()
                tr.span("tmu.engine", "run", tr.alloc(5), 5)
                return dict(record)

        from repro.runtime.executor import _evaluate_task

        out = _evaluate_task(FakeTask(), False, True)
        body = out["trace"]
        assert body["ticks"] == 5
        assert len(body["events"]) == 1
        # the parent folds the body into its own tracer
        with obs.trace_capture() as parent:
            parent.tick(3)
            obs.tracer().merge(body)
        assert parent.events[-1][0] == 3
        assert parent.now == 8

    def test_evaluate_without_capture_leaves_record_clean(self):
        class FakeTask:
            def evaluate(self):
                return {"results": {}}

        from repro.runtime.executor import _evaluate_task

        out = _evaluate_task(FakeTask())
        assert "trace" not in out and "telemetry" not in out
