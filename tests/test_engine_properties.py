"""Property-based and failure-injection tests for the TMU engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TMURuntimeError
from repro.fibers.fiber import Fiber
from repro.fibers.merge import conjunctive_merge, disjunctive_merge
from repro.tmu import Event, LayerMode, Program, TmuEngine
from repro.types import INDEX_BYTES, VALUE_BYTES


def _merge_program(fiber_indices: list[list[int]], mode: LayerMode,
                   sort: bool = True) -> tuple[Program, list]:
    """A one-layer merge program over explicit coordinate lists."""
    prog = Program("prop_merge", lanes=max(1, len(fiber_indices)))
    layer = prog.add_layer(mode)
    for lane, idx in enumerate(fiber_indices):
        arr = np.asarray(sorted(idx) if sort else idx, dtype=np.int64)
        coords = prog.place_array(arr, INDEX_BYTES, f"idx{lane}")
        vals = prog.place_array(np.arange(1.0, arr.size + 1),
                                VALUE_BYTES, f"val{lane}")
        tu = layer.dns_fbrt(beg=0, end=int(arr.size))
        key = tu.add_mem_stream(coords, name=f"key{lane}")
        tu.add_mem_stream(vals, name=f"v{lane}")
        tu.set_merge_key(key)
    layer.add_callback(Event.GITE, "pt", [layer.index_operand(),
                                          layer.mask_operand()])
    points: list[tuple[int, int]] = []
    return prog, points


def _run_merge(fiber_indices, mode, fast=False):
    prog, points = _merge_program(fiber_indices, mode)
    TmuEngine(prog, fast=fast).run({"pt": lambda r: points.append(
        (int(r.operands[0]), int(r.operands[1])))})
    return points


#: both engine flavors must satisfy every property below
ENGINES = pytest.mark.parametrize("fast", [False, True],
                                  ids=["reference", "fastlane"])


unique_fibers = st.lists(
    st.lists(st.integers(0, 25), min_size=1, max_size=12, unique=True),
    min_size=1, max_size=6,
)


class TestMergeEquivalence:
    """The hardware TG must agree with the software merge reference on
    arbitrary sorted fibers."""

    @ENGINES
    @given(unique_fibers)
    @settings(max_examples=60, deadline=None)
    def test_disjunctive_matches_reference(self, fast, fibers):
        hw = _run_merge(fibers, LayerMode.DISJ_MRG, fast)
        ref_fibers = [Fiber(np.sort(np.asarray(f, dtype=np.int64)),
                            np.ones(len(f)), validate=False)
                      for f in fibers]
        ref = [(p.index, p.mask) for p in disjunctive_merge(ref_fibers)]
        assert hw == ref

    @ENGINES
    @given(unique_fibers)
    @settings(max_examples=60, deadline=None)
    def test_conjunctive_matches_reference(self, fast, fibers):
        hw = _run_merge(fibers, LayerMode.CONJ_MRG, fast)
        ref_fibers = [Fiber(np.sort(np.asarray(f, dtype=np.int64)),
                            np.ones(len(f)), validate=False)
                      for f in fibers]
        ref = [(p.index, p.mask) for p in conjunctive_merge(ref_fibers)]
        assert hw == ref

    @ENGINES
    @given(unique_fibers)
    @settings(max_examples=40, deadline=None)
    def test_disjunctive_output_sorted_and_unique(self, fast, fibers):
        hw = _run_merge(fibers, LayerMode.DISJ_MRG, fast)
        coords = [c for c, _ in hw]
        assert coords == sorted(set(coords))


class TestFailureInjection:
    @ENGINES
    def test_unsorted_fiber_rejected_by_merger(self, fast):
        """Sorted coordinates are a format invariant (Section 2.4); the
        merger detects the violation instead of emitting garbage."""
        prog, _ = _merge_program([[5, 2, 9], [1, 3]],
                                 LayerMode.DISJ_MRG, sort=False)
        with pytest.raises(TMURuntimeError):
            TmuEngine(prog, fast=fast).run()

    @ENGINES
    def test_out_of_bounds_stream_load(self, fast):
        """A mem stream chasing a corrupted index faults (the MMU/page
        fault path of Section 5.6) instead of reading junk."""
        from repro.errors import TMUConfigError

        prog = Program("oob", lanes=1)
        bad_idx = prog.place_array(np.array([0, 99]), INDEX_BYTES, "idx")
        data = prog.place_array(np.zeros(4), VALUE_BYTES, "data")
        l0 = prog.add_layer(LayerMode.SINGLE)
        tu = l0.dns_fbrt(beg=0, end=2)
        chase = tu.add_mem_stream(bad_idx, name="chase")
        tu.add_mem_stream(data, parent=chase, name="victim")
        with pytest.raises(TMUConfigError):
            TmuEngine(prog, fast=fast).run()

    @ENGINES
    def test_handler_exception_propagates(self, fast):
        """Core-side faults surface to the caller, not get swallowed."""
        prog, _ = _merge_program([[1, 2]], LayerMode.DISJ_MRG)

        def boom(record):
            raise RuntimeError("core fault")

        with pytest.raises(RuntimeError, match="core fault"):
            TmuEngine(prog, fast=fast).run({"pt": boom})

    @ENGINES
    @given(unique_fibers)
    @settings(max_examples=20, deadline=None)
    def test_stats_consistent_under_any_input(self, fast, fibers):
        prog, points = _merge_program(fibers, LayerMode.DISJ_MRG)
        stats = TmuEngine(prog, fast=fast).run(
            {"pt": lambda r: points.append(1)})
        assert stats.outq_records == len(points)
        assert stats.layer_iterations[0] == sum(len(f) for f in fibers)
        assert stats.layer_merge_steps[0] == len(points)
