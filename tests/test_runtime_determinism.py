"""Determinism of SimTask evaluation — the caching precondition.

Content-addressed caching is only sound if re-evaluating the same task
spec reproduces the same record bit-for-bit.  These tests clear every
in-process memo layer between two evaluations of a sample of
workloads (one per input kind and intensity category) and compare the
canonical JSON encodings byte for byte.
"""

from __future__ import annotations

import json

import pytest

from repro.eval import workloads as wl
from repro.generators import suite
from repro.runtime import SimTask


def _canonical_bytes(record: dict) -> bytes:
    return json.dumps(record, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def _clear_memos() -> None:
    """Force full recomputation: drop the run memo and the generated
    input memos, so the second evaluation rebuilds inputs and re-runs
    the simulation from scratch."""
    wl.run_workload.cache_clear()
    suite.load_matrix.cache_clear()
    suite.load_tensor.cache_clear()


SAMPLE = [
    ("spmv", "M1"),        # memory-intensive, matrix
    ("spmspm", "M2"),      # compute-intensive, matrix
    ("spkadd", "M3"),      # merge-intensive, matrix
    ("mttkrp_mp", "T1"),   # memory-intensive, tensor
]


@pytest.mark.parametrize("workload,input_id", SAMPLE)
def test_same_seed_is_byte_identical(workload, input_id):
    task = SimTask(workload, input_id, scale="small", seed=0)
    first = task.evaluate()
    _clear_memos()
    second = task.evaluate()
    assert _canonical_bytes(first) == _canonical_bytes(second)


def test_record_survives_disk_roundtrip_byte_identically(tmp_path):
    """What the cache writes is exactly what a rerun would produce."""
    task = SimTask("spmv", "M2", scale="small")
    record = task.evaluate()
    path = tmp_path / "record.json"
    path.write_text(json.dumps(record, sort_keys=True), encoding="utf-8")
    loaded = json.loads(path.read_text(encoding="utf-8"))
    assert _canonical_bytes(loaded) == _canonical_bytes(record)


def test_hash_stable_across_memo_state():
    """The content hash never depends on warm in-process caches."""
    task = SimTask("spkadd", "M1")
    before = task.content_hash()
    task.evaluate()
    assert SimTask("spkadd", "M1").content_hash() == before
    _clear_memos()
    assert SimTask("spkadd", "M1").content_hash() == before
