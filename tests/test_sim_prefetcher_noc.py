"""IMP prefetcher model and NoC model tests."""

import pytest

from repro.config import NocConfig
from repro.errors import SimulationError
from repro.sim.memsys import AccessProfile, StreamProfile
from repro.sim.noc import NocModel
from repro.sim.prefetcher import ImpConfig, apply_imp


def profile_with(streams):
    return AccessProfile(streams=streams, line_bytes=64)


def gather_stream(mem=100):
    return StreamProfile(label="b[idx]", kind="read", dependent=True,
                         gather=True, accesses=1000, bytes=8000,
                         llc_hits=100, mem_accesses=mem)


def accumulator_stream():
    return StreamProfile(label="accumulator", kind="read",
                         dependent=True, accesses=1000, bytes=8000,
                         l2_hits=600, llc_hits=300, mem_accesses=100)


class TestImp:
    def test_covers_gathers(self):
        out = apply_imp(profile_with([gather_stream()]))
        assert out.streams[0].prefetch_coverage > 0.5

    def test_ignores_plain_dependent_scans(self):
        scan = StreamProfile(label="B idxs scan", kind="read",
                             dependent=True, accesses=100, bytes=400,
                             mem_accesses=50)
        out = apply_imp(profile_with([scan]))
        assert out.streams[0].prefetch_coverage == 0.0

    def test_pollutes_partial_results_when_active(self):
        out = apply_imp(profile_with([gather_stream(),
                                      accumulator_stream()]))
        acc = out.streams[1]
        assert acc.l2_hits < 600
        assert acc.mem_accesses > 100

    def test_no_pollution_without_indirect_streams(self):
        out = apply_imp(profile_with([accumulator_stream()]))
        acc = out.streams[0]
        assert acc.l2_hits == 600 and acc.mem_accesses == 100

    def test_config_validation(self):
        with pytest.raises(SimulationError):
            ImpConfig(coverage=1.5)
        with pytest.raises(SimulationError):
            ImpConfig(pollution_factor=-0.1)

    def test_original_profile_untouched(self):
        original = profile_with([gather_stream()])
        apply_imp(original)
        assert original.streams[0].prefetch_coverage == 0.0


class TestNoc:
    def test_average_hops_of_4x4_mesh(self):
        noc = NocConfig(mesh_x=4, mesh_y=4)
        # mean Manhattan distance of a 4x4 mesh is 2.5
        assert noc.average_hops() == pytest.approx(2.5)

    def test_latency_inflates_with_utilization(self):
        model = NocModel(NocConfig())
        assert model.average_latency(0.8) > model.average_latency(0.0)

    def test_utilization_bounds(self):
        model = NocModel(NocConfig())
        with pytest.raises(SimulationError):
            model.average_latency(1.0)
        with pytest.raises(SimulationError):
            model.average_latency(-0.1)

    def test_bisection_capacity(self):
        model = NocModel(NocConfig(mesh_x=4, mesh_y=4))
        assert model.bisection_lines_per_cycle() == pytest.approx(2.0)
        assert model.saturation_utilization(1.0) == pytest.approx(0.5)
        assert model.saturation_utilization(100.0) == 1.0
