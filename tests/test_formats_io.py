"""MatrixMarket / FROSTT text I/O tests."""

import io

import pytest

from repro.errors import FormatError
from repro.formats.io import (
    matrix_to_string,
    read_matrix_market,
    read_tns,
    write_matrix_market,
    write_tns,
)


class TestMatrixMarket:
    def test_round_trip_string(self, small_coo):
        text = matrix_to_string(small_coo)
        again = read_matrix_market(io.StringIO(text))
        assert again == small_coo

    def test_round_trip_file(self, small_coo, tmp_path):
        path = tmp_path / "m.mtx"
        write_matrix_market(small_coo, path)
        assert read_matrix_market(path) == small_coo

    def test_pattern_matrices_get_unit_values(self):
        text = ("%%MatrixMarket matrix coordinate pattern general\n"
                "2 2 2\n1 1\n2 2\n")
        m = read_matrix_market(io.StringIO(text))
        assert m.values.tolist() == [1.0, 1.0]

    def test_symmetric_expansion(self):
        text = ("%%MatrixMarket matrix coordinate real symmetric\n"
                "3 3 2\n2 1 5.0\n3 3 7.0\n")
        m = read_matrix_market(io.StringIO(text))
        dense = m.to_dense()
        assert dense[1, 0] == 5.0 and dense[0, 1] == 5.0
        assert dense[2, 2] == 7.0
        assert m.nnz == 3  # diagonal entry not duplicated

    def test_comment_lines_skipped(self):
        text = ("%%MatrixMarket matrix coordinate real general\n"
                "% a comment\n% another\n1 1 1\n1 1 2.5\n")
        m = read_matrix_market(io.StringIO(text))
        assert m.values.tolist() == [2.5]

    def test_bad_header_rejected(self):
        with pytest.raises(FormatError):
            read_matrix_market(io.StringIO("garbage\n1 1 0\n"))

    def test_unsupported_kind_rejected(self):
        text = "%%MatrixMarket matrix array real general\n"
        with pytest.raises(FormatError):
            read_matrix_market(io.StringIO(text))


class TestTns:
    def test_round_trip(self, small_tensor, tmp_path):
        path = tmp_path / "t.tns"
        write_tns(small_tensor, path)
        again = read_tns(path, shape=small_tensor.shape)
        assert again == small_tensor

    def test_shape_inferred_when_missing(self):
        text = "1 2 3 1.5\n4 5 6 2.5\n"
        t = read_tns(io.StringIO(text))
        assert t.shape == (4, 5, 6)
        assert t.nnz == 2

    def test_comments_and_blank_lines(self):
        text = "# header\n\n1 1 1.0\n"
        t = read_tns(io.StringIO(text))
        assert t.nnz == 1

    def test_inconsistent_arity_rejected(self):
        with pytest.raises(FormatError):
            read_tns(io.StringIO("1 2 3 1.0\n1 2 1.0\n"))

    def test_empty_file_rejected(self):
        with pytest.raises(FormatError):
            read_tns(io.StringIO(""))
