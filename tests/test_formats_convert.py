"""Conversion round trips between all formats, incl. property tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConversionError
from repro.formats.convert import (
    coo_to_csf,
    coo_to_csr,
    coo_to_dcsr,
    csf_to_coo,
    csr_to_coo,
    csr_to_dcsr,
    dcsr_to_coo,
    dcsr_to_csr,
)
from repro.formats.coo import CooMatrix


def random_coo(seed: int, rows: int = 9, cols: int = 11) -> CooMatrix:
    rng = np.random.default_rng(seed)
    nnz = int(rng.integers(0, rows * cols // 2))
    r = rng.integers(0, rows, nnz)
    c = rng.integers(0, cols, nnz)
    return CooMatrix((rows, cols), r, c, rng.random(nnz))


@given(st.integers(0, 200))
@settings(max_examples=40, deadline=None)
def test_coo_csr_round_trip(seed):
    coo = random_coo(seed)
    assert csr_to_coo(coo_to_csr(coo)) == coo


@given(st.integers(0, 200))
@settings(max_examples=40, deadline=None)
def test_coo_dcsr_round_trip(seed):
    coo = random_coo(seed)
    assert dcsr_to_coo(coo_to_dcsr(coo)) == coo


@given(st.integers(0, 200))
@settings(max_examples=40, deadline=None)
def test_csr_dcsr_round_trip(seed):
    csr = coo_to_csr(random_coo(seed))
    assert dcsr_to_csr(csr_to_dcsr(csr)) == csr


@given(st.integers(0, 200))
@settings(max_examples=25, deadline=None)
def test_all_paths_agree_on_dense(seed):
    coo = random_coo(seed)
    dense = coo.to_dense()
    assert np.allclose(coo_to_csr(coo).to_dense(), dense)
    assert np.allclose(coo_to_dcsr(coo).to_dense(), dense)
    assert np.allclose(csr_to_dcsr(coo_to_csr(coo)).to_dense(), dense)


def test_csf_permutation_must_be_valid(small_tensor):
    with pytest.raises(ConversionError):
        coo_to_csf(small_tensor, mode_order=(0, 0, 1))


def test_csf_round_trip_with_permutation(small_tensor):
    csf = coo_to_csf(small_tensor, mode_order=(1, 2, 0))
    back = csf_to_coo(csf)
    expected = np.transpose(small_tensor.to_dense(), (1, 2, 0))
    assert np.allclose(back.to_dense(), expected)


def test_empty_matrix_conversions():
    coo = CooMatrix((5, 5), [], [], [])
    csr = coo_to_csr(coo)
    dcsr = coo_to_dcsr(coo)
    assert csr.nnz == 0 and dcsr.nnz == 0
    assert csr_to_coo(csr).nnz == 0
    assert dcsr_to_csr(dcsr).nnz == 0
