"""The experiment runtime: tasks, cache, executor, manifests.

Covers the acceptance criterion of the subsystem: a fig10-style sweep
submitted with ``jobs=4`` produces results identical to the serial
path, and a warm-cache rerun reports >= 95% hits in its manifest and
skips re-simulation.
"""

from __future__ import annotations

import json

import pytest

from repro import runtime
from repro.config import experiment_machine
from repro.errors import ExecutorError, WorkloadError
from repro.runtime import (
    CODE_SALT,
    NullCache,
    ResultCache,
    RunManifest,
    Runtime,
    SimTask,
    machine_from_dict,
    machine_to_dict,
    run_from_record,
)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestSimTask:
    def test_hash_is_deterministic_and_spec_addressed(self):
        a = SimTask("spmv", "M1")
        b = SimTask("spmv", "M1")
        assert a.content_hash() == b.content_hash()
        assert len(a.content_hash()) == 64

    def test_hash_differs_on_any_spec_field(self):
        base = SimTask("spmv", "M1")
        assert base.content_hash() != SimTask("spmv", "M2").content_hash()
        assert base.content_hash() != SimTask(
            "spmspm", "M1").content_hash()
        assert base.content_hash() != SimTask(
            "spmv", "M1", seed=7).content_hash()
        assert base.content_hash() != SimTask(
            "spmv", "M1", variants=("baseline",)).content_hash()
        tweaked = experiment_machine("small").with_tmu(lanes=4)
        assert base.content_hash() != SimTask(
            "spmv", "M1", machine=tweaked).content_hash()

    def test_variant_order_does_not_change_hash(self):
        a = SimTask("spmv", "M1", variants=("baseline", "tmu"))
        b = SimTask("spmv", "M1", variants=("tmu", "baseline"))
        assert a.content_hash() == b.content_hash()

    def test_default_machine_matches_explicit(self):
        implicit = SimTask("spmv", "M1", scale="small")
        explicit = SimTask("spmv", "M1", scale="small",
                           machine=experiment_machine("small"))
        assert implicit.content_hash() == explicit.content_hash()

    def test_unknown_variant_rejected(self):
        with pytest.raises(WorkloadError):
            SimTask("spmv", "M1", variants=("baseline", "warp"))

    def test_machine_roundtrip(self):
        machine = experiment_machine("small").with_tmu(lanes=4)
        assert machine_from_dict(machine_to_dict(machine)) == machine

    def test_record_roundtrips_through_json(self):
        task = SimTask("spmv", "M1")
        record = task.evaluate()
        assert record["salt"] == CODE_SALT
        assert record["hash"] == task.content_hash()
        rebuilt = run_from_record(
            json.loads(json.dumps(record)))
        direct = run_from_record(record)
        assert rebuilt.speedup == direct.speedup
        assert rebuilt.baseline.cycles == direct.baseline.cycles
        assert rebuilt.baseline.breakdown == direct.baseline.breakdown

    def test_evaluate_covers_requested_variants(self):
        record = SimTask(
            "spmv", "M1",
            variants=("baseline", "tmu", "single_lane", "imp"),
        ).evaluate()
        assert set(record["results"]) == {
            "baseline", "tmu", "single_lane", "imp"}
        run = run_from_record(record)
        assert run.imp is not None and run.single_lane is not None


class TestResultCache:
    def test_miss_then_hit(self, cache):
        task = SimTask("spmv", "M1")
        assert cache.get(task) is None
        record = task.evaluate()
        cache.put(task, record)
        assert cache.get(task) == json.loads(json.dumps(record))
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.puts == 1
        assert len(cache) == 1

    def test_invalidate_one_and_all(self, cache):
        tasks = [SimTask("spmv", i) for i in ("M1", "M2", "M3")]
        for t in tasks:
            cache.put(t, {"salt": CODE_SALT, "fake": True})
        assert cache.invalidate(tasks[0]) == 1
        assert len(cache) == 2
        assert cache.invalidate() == 2
        assert len(cache) == 0
        assert cache.invalidate(tasks[0]) == 0

    def test_gc_reclaims_stale_salt_and_corrupt(self, cache):
        live = SimTask("spmv", "M1")
        cache.put(live, {"salt": CODE_SALT})
        cache.put("0" * 64, {"salt": "repro/0.0.0/schema-0"})
        (cache.root / ("1" * 64 + ".json")).write_text("{not json")
        assert cache.gc() == 2
        assert len(cache) == 1
        assert cache.get(live) is not None

    def test_stale_salt_is_a_miss(self, cache):
        task = SimTask("spmv", "M1")
        cache.put(task, {"salt": "repro/0.0.0/schema-0"})
        assert cache.get(task) is None

    def test_corrupt_entry_is_dropped_not_fatal(self, cache):
        task = SimTask("spmv", "M1")
        cache.path_for(task).write_text("truncated{")
        assert cache.get(task) is None
        assert cache.stats.errors == 1
        assert not cache.path_for(task).exists()

    def test_null_cache(self):
        null = NullCache()
        task = SimTask("spmv", "M1")
        null.put(task, {"x": 1})
        assert null.get(task) is None
        assert len(null) == 0
        assert null.invalidate() == 0 and null.gc() == 0


class TestRuntimeSerial:
    def test_run_cells_and_manifest(self, cache):
        rt = Runtime(jobs=1, cache=cache)
        tasks = [SimTask("spmv", i) for i in ("M1", "M2")]
        runs = rt.run_cells(tasks)
        assert all(runs[t].speedup > 1.0 for t in tasks)
        manifest = rt.last_manifest
        assert manifest.total == 2
        assert manifest.cache_hits == 0
        assert manifest.simulated == 2
        assert not manifest.failures
        assert manifest.mode == "serial"

    def test_duplicate_tasks_collapse_to_one_cell(self, cache):
        rt = Runtime(jobs=1, cache=cache)
        runs = rt.run_cells([SimTask("spmv", "M1")] * 5)
        assert len(runs) == 1
        assert rt.last_manifest.total == 1

    def test_warm_cache_skips_simulation(self, cache):
        tasks = [SimTask("spmv", i) for i in ("M1", "M2", "M3")]
        cold = Runtime(jobs=1, cache=cache)
        cold.run_cells(tasks)
        warm = Runtime(jobs=1, cache=cache)
        runs = warm.run_cells(tasks)
        manifest = warm.last_manifest
        assert manifest.cache_hits == 3
        assert manifest.simulated == 0
        assert manifest.hit_rate == 1.0
        assert all(runs[t].speedup > 0 for t in tasks)

    def test_retry_then_failure_reported(self, tmp_path):
        calls = {"n": 0}

        def boom(task):
            calls["n"] += 1
            raise ValueError("injected")

        rt = Runtime(jobs=1, cache=NullCache(), retries=2,
                     backoff=0.0)
        import repro.runtime.executor as executor_mod
        original = executor_mod._evaluate_task
        executor_mod._evaluate_task = boom
        try:
            report = rt.run([SimTask("spmv", "M1")])
        finally:
            executor_mod._evaluate_task = original
        assert calls["n"] == 3              # 1 attempt + 2 retries
        [outcome] = report.outcomes
        assert not outcome.ok
        assert "injected" in outcome.error
        assert outcome.attempts == 3
        with pytest.raises(ExecutorError):
            rt.run_cells([SimTask("nope", "M1")])

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ExecutorError):
            Runtime(jobs=0)
        with pytest.raises(ExecutorError):
            Runtime(retries=-1)


class TestRuntimeParallel:
    """The acceptance sweep: jobs=4 vs serial, then warm cache."""

    def test_fig10_style_sweep_parallel_matches_serial(self, tmp_path):
        tasks = [SimTask(w, i)
                 for w in ("spmv", "spkadd")
                 for i in ("M1", "M2", "M3", "M4", "M5", "M6")]

        parallel = Runtime(jobs=4,
                           cache=ResultCache(tmp_path / "par"))
        par_runs = parallel.run_cells(tasks)
        assert parallel.last_manifest.mode in ("process-pool",
                                               "fallback-serial")

        serial = Runtime(jobs=1, cache=NullCache())
        ser_runs = serial.run_cells(tasks)

        for task in tasks:
            assert par_runs[task].speedup == ser_runs[task].speedup
            assert (par_runs[task].baseline.cycles
                    == ser_runs[task].baseline.cycles)
            assert (par_runs[task].tmu.cycles
                    == ser_runs[task].tmu.cycles)

        # Second, warm-cache invocation: >= 95% hits, no simulation.
        warm = Runtime(jobs=4, cache=ResultCache(tmp_path / "par"))
        warm_runs = warm.run_cells(tasks)
        manifest = warm.last_manifest
        assert manifest.hit_rate >= 0.95
        assert manifest.simulated == 0
        for task in tasks:
            assert warm_runs[task].speedup == ser_runs[task].speedup

    def test_pool_results_are_cached_for_serial_readers(self, tmp_path):
        cache_dir = tmp_path / "shared"
        tasks = [SimTask("spmv", i) for i in ("M1", "M2")]
        Runtime(jobs=2, cache=ResultCache(cache_dir)).run_cells(tasks)
        reader = Runtime(jobs=1, cache=ResultCache(cache_dir))
        reader.run_cells(tasks)
        assert reader.last_manifest.hit_rate == 1.0

    def test_reference_selection_rides_the_spec_into_workers(self,
                                                             tmp_path):
        """``--reference`` under ``--jobs 4``: model selection must
        reach pool workers through each task's (hashed) spec, never
        through ambient process-global state — a spawned worker does
        not inherit the parent's module globals, so anything that only
        lives there silently reverts to the fast models."""
        from repro.config import set_default_fast

        cache = ResultCache(tmp_path / "ref")
        set_default_fast(False)
        try:
            tasks = [SimTask("spmv", i) for i in ("M1", "M2")]
            ref_hashes = [t.content_hash() for t in tasks]
            Runtime(jobs=4, cache=cache).run_cells(tasks)
        finally:
            set_default_fast(True)
        for ref_hash in ref_hashes:
            record = cache.get(ref_hash)
            assert record is not None
            machine = record["task"]["machine"]
            assert machine["fast_engine"] is False
            assert machine["fast_cache"] is False
        # fresh tasks under the restored default hash differently: the
        # two model families can never collide in the cache
        fast_hashes = [SimTask("spmv", i).content_hash()
                       for i in ("M1", "M2")]
        assert set(fast_hashes).isdisjoint(ref_hashes)
        assert all(cache.get(h) is None for h in fast_hashes)


class TestManifest:
    def test_roundtrip_and_summary(self, tmp_path, cache):
        rt = Runtime(jobs=1, cache=cache)
        rt.run_cells([SimTask("spmv", "M1")])
        manifest = rt.last_manifest
        path = manifest.write(tmp_path / "m" / "run.json")
        loaded = RunManifest.load(path)
        assert loaded.total == manifest.total
        assert loaded.cache_hits == manifest.cache_hits
        assert [e.hash for e in loaded.entries] == [
            e.hash for e in manifest.entries]
        text = manifest.summary()
        assert "1 cells" in text and "0 failed" in text

    def test_entries_carry_provenance(self, cache):
        rt = Runtime(jobs=1, cache=cache)
        task = SimTask("spmv", "M1")
        rt.run_cells([task])
        [entry] = rt.last_manifest.entries
        assert entry.hash == task.content_hash()
        assert entry.workload == "spmv"
        assert entry.input_id == "M1"
        assert entry.wall_time > 0
        assert entry.attempts == 1
        assert entry.ok


class TestGlobalConfiguration:
    def test_configure_and_reset(self, tmp_path):
        try:
            rt = runtime.configure(jobs=2, cache_dir=tmp_path / "c")
            assert runtime.active_runtime() is rt
            assert isinstance(rt.cache, ResultCache)
        finally:
            runtime.reset()
        assert runtime.active_runtime() is not rt
        assert isinstance(runtime.active_runtime().cache, NullCache)
        runtime.reset()

    def test_using_scopes_the_swap(self):
        outer = runtime.active_runtime()
        inner = Runtime(jobs=1)
        with runtime.using(inner) as rt:
            assert rt is inner
            assert runtime.active_runtime() is inner
        assert runtime.active_runtime() is outer
        runtime.reset()

    def test_drivers_route_through_active_runtime(self, tmp_path):
        from repro.eval import experiments as ex

        with runtime.using(Runtime(
                jobs=1, cache=ResultCache(tmp_path / "c"))) as rt:
            data = ex.fig10_speedups("small", workloads=("spmv",))
            assert rt.last_manifest is not None
            assert rt.last_manifest.total == 6
            cold = rt.last_manifest.simulated
            assert cold == 6
            again = ex.fig10_speedups("small", workloads=("spmv",))
            assert rt.last_manifest.hit_rate == 1.0
            assert data == again
