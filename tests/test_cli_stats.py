"""Tests for the ``repro stats`` CLI and the ``--telemetry`` flag.

Exercises exactly the command sequence the ``bench-smoke`` CI job runs:
dump a snapshot, diff it against a baseline, and gate on the headline
cells/sec metric.
"""

import json

import pytest

from repro.cli import main
from repro.obs import Registry, make_snapshot, write_snapshot


@pytest.fixture()
def snapshots(tmp_path):
    """(baseline, same, slower) snapshot files on disk."""

    def snap(path, cells_per_sec):
        reg = Registry()
        reg.counter("runtime.executor.cells").add(12)
        reg.gauge("runtime.executor.cells_per_sec").set(cells_per_sec)
        reg.timer("runtime.executor.batch").observe(1.0)
        return write_snapshot(make_snapshot(reg), path)

    return (
        snap(tmp_path / "baseline.json", 10.0),
        snap(tmp_path / "same.json", 10.0),
        snap(tmp_path / "slower.json", 7.0),
    )


class TestStatsDump:
    def test_dump_renders_metrics(self, snapshots, capsys):
        baseline, _, _ = snapshots
        assert main(["stats", "dump", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "schema: repro.obs/1" in out
        assert "runtime.executor.cells_per_sec" in out

    def test_dump_json_round_trips(self, snapshots, capsys):
        baseline, _, _ = snapshots
        assert main(["stats", "dump", str(baseline), "--json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["gauges"]["runtime.executor.cells_per_sec"]["value"] == 10.0

    def test_dump_missing_file_is_an_error(self, tmp_path, capsys):
        assert main(["stats", "dump", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_dump_rejects_schema_violations(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "repro.obs/1"}))
        assert main(["stats", "dump", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err


class TestStatsDiff:
    def test_identical_snapshots_pass_the_gate(self, snapshots, capsys):
        baseline, same, _ = snapshots
        rc = main(
            [
                "stats",
                "diff",
                str(baseline),
                str(same),
                "--max-regression",
                "0.2",
            ]
        )
        assert rc == 0
        assert "ok runtime.executor.cells_per_sec" in capsys.readouterr().out

    def test_regression_beyond_bound_fails(self, snapshots, capsys):
        baseline, _, slower = snapshots
        rc = main(
            [
                "stats",
                "diff",
                str(baseline),
                str(slower),
                "--max-regression",
                "0.2",
            ]
        )
        assert rc == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_regression_within_bound_passes(self, snapshots):
        baseline, _, slower = snapshots
        rc = main(
            [
                "stats",
                "diff",
                str(baseline),
                str(slower),
                "--max-regression",
                "0.5",
            ]
        )
        assert rc == 0

    def test_diff_without_gate_always_exits_zero(self, snapshots, capsys):
        baseline, _, slower = snapshots
        assert main(["stats", "diff", str(baseline), str(slower)]) == 0
        out = capsys.readouterr().out
        assert "runtime.executor.cells_per_sec" in out

    def test_changed_only_hides_identical_rows(self, snapshots, capsys):
        baseline, same, _ = snapshots
        assert (
            main(["stats", "diff", str(baseline), str(same), "--changed-only"]) == 0
        )
        out = capsys.readouterr().out
        assert "runtime.executor.cells" not in out

    def test_missing_headline_metric_fails(self, snapshots, tmp_path, capsys):
        baseline, _, _ = snapshots
        empty = write_snapshot(make_snapshot(Registry()), tmp_path / "e.json")
        rc = main(
            [
                "stats",
                "diff",
                str(baseline),
                str(empty),
                "--max-regression",
                "0.2",
            ]
        )
        assert rc == 1
        assert "missing" in capsys.readouterr().out

    def test_lower_is_better_flips_direction(self, snapshots, tmp_path):
        baseline, _, _ = snapshots
        reg = Registry()
        reg.gauge("runtime.executor.cells_per_sec").set(13.0)
        higher = write_snapshot(make_snapshot(reg), tmp_path / "h.json")
        rc = main(
            [
                "stats",
                "diff",
                str(baseline),
                str(higher),
                "--max-regression",
                "0.2",
                "--lower-is-better",
            ]
        )
        assert rc == 1


class TestTelemetryFlag:
    def test_experiment_writes_schema_valid_snapshot(self, tmp_path, capsys):
        from repro.obs import load_snapshot

        out = tmp_path / "run.json"
        rc = main(
            [
                "table5",
                "--no-cache",
                "--telemetry",
                str(out),
            ]
        )
        assert rc == 0
        snap = load_snapshot(out)
        assert snap["meta"]["experiments"] == "table5"
        capsys.readouterr()
