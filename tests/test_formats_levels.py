"""Tests for the level-format abstraction (Chou et al., Section 2.2)."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats.levels import (
    CompressedLevel,
    DenseLevel,
    LevelTensor,
    SingletonLevel,
    build_level_tensor,
)


class TestLevelPrimitives:
    def test_dense_level_positions(self):
        level = DenseLevel(4, parent_positions=3)
        assert level.fiber_bounds(2) == (8, 12)
        assert level.coordinate(9) == 1
        assert level.num_positions() == 12
        assert level.nbytes() == 0

    def test_compressed_level(self):
        level = CompressedLevel([0, 1, 2, 2, 4], [0, 2, 1, 3])
        assert level.fiber_bounds(3) == (2, 4)
        assert level.coordinate(2) == 1
        assert list(level.iter_fiber(3)) == [(1, 2), (3, 3)]

    def test_compressed_level_validation(self):
        with pytest.raises(FormatError):
            CompressedLevel([1, 2], [0])
        with pytest.raises(FormatError):
            CompressedLevel([0, 2], [0])

    def test_singleton_level(self):
        level = SingletonLevel([5, 7, 9])
        assert level.fiber_bounds(1) == (1, 2)
        assert level.coordinate(2) == 9


class TestFormatSpecs:
    """CSR = (dense, compressed); DCSR = (compressed, compressed);
    COO = (compressed_nonunique, singleton); CSF = all compressed."""

    def test_csr_spec(self, figure1_matrix):
        lt = build_level_tensor(figure1_matrix, ("dense", "compressed"))
        assert lt.format_spec() == ("dense", "compressed")
        assert np.allclose(lt.to_dense(), figure1_matrix.to_dense())
        # level 1 must be exactly the CSR arrays of Figure 1b
        assert lt.levels[1].ptrs.tolist() == [0, 1, 2, 2, 4]
        assert lt.levels[1].idxs.tolist() == [0, 2, 1, 3]

    def test_dcsr_spec(self, figure1_matrix):
        lt = build_level_tensor(figure1_matrix,
                                ("compressed", "compressed"))
        assert np.allclose(lt.to_dense(), figure1_matrix.to_dense())
        # root level stores only non-empty rows
        assert lt.levels[0].idxs.tolist() == [0, 1, 3]

    def test_coo_spec(self, figure1_matrix):
        lt = build_level_tensor(
            figure1_matrix, ("compressed_nonunique", "singleton"))
        assert np.allclose(lt.to_dense(), figure1_matrix.to_dense())
        assert lt.levels[0].idxs.tolist() == [0, 1, 3, 3]
        assert lt.levels[1].idxs.tolist() == [0, 2, 1, 3]

    def test_csf_spec(self, small_tensor):
        lt = build_level_tensor(
            small_tensor, ("compressed", "compressed", "compressed"))
        assert np.allclose(lt.to_dense(), small_tensor.to_dense())

    def test_all_dense_spec(self, figure1_matrix):
        lt = build_level_tensor(figure1_matrix, ("dense", "dense"))
        assert np.allclose(lt.to_dense(), figure1_matrix.to_dense())
        assert lt.nnz == 16  # fully materialized

    def test_iter_nonzeros_lexicographic(self, small_coo):
        lt = build_level_tensor(small_coo, ("dense", "compressed"))
        coords = [c for c, v in lt.iter_nonzeros() if v != 0.0]
        assert coords == sorted(coords)


class TestValidation:
    def test_unknown_kind(self, figure1_matrix):
        with pytest.raises(FormatError):
            build_level_tensor(figure1_matrix, ("dense", "banana"))

    def test_spec_arity(self, figure1_matrix):
        with pytest.raises(FormatError):
            build_level_tensor(figure1_matrix, ("dense",))

    def test_singleton_needs_nonunique_parent(self, figure1_matrix):
        with pytest.raises(FormatError):
            build_level_tensor(figure1_matrix, ("dense", "singleton"))

    def test_level_tensor_alignment(self):
        with pytest.raises(FormatError):
            LevelTensor((2,), [DenseLevel(2)], [1.0])
