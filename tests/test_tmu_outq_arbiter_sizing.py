"""outQ, memory arbiter and queue sizing tests (Sections 5.3-5.5)."""

import numpy as np
import pytest

from repro.errors import TMUConfigError
from repro.tmu.arbiter import MemoryArbiter
from repro.tmu.outq import MaskValue, OutQueue, OutQueueRecord
from repro.tmu.sizing import MIN_ENTRIES, size_queues
from repro.tmu.streams import MemoryArray
from repro.tmu.tu import PrimitiveKind, TraversalUnit


class TestOutQueue:
    def test_record_sizing(self):
        rec = OutQueueRecord("ri", ((1.0, 2.0), 3.0, MaskValue(0b11)),
                             0b11, 1)
        # header 4 + vec 16 + scalar 8 + mask 2
        assert rec.nbytes() == 30

    def test_chunk_accounting(self):
        q = OutQueue(chunk_bytes=64)
        rec = OutQueueRecord("ri", ((1.0,) * 7,), 0, 0)  # 4 + 56 = 60 B
        q.push(rec)
        assert q.chunks_completed == 0
        q.push(rec)
        assert q.chunks_completed == 1
        assert q.num_chunks == 2  # one full + one partial

    def test_drain(self):
        q = OutQueue()
        q.push(OutQueueRecord("a", (), 0, 0))
        assert len(q.drain()) == 1
        assert q.num_records == 0

    def test_chunk_must_fit_a_record(self):
        with pytest.raises(TMUConfigError):
            OutQueue(chunk_bytes=4)


class TestArbiter:
    def _tu_with_streams(self, layer, lane):
        tu = TraversalUnit(layer, lane, PrimitiveKind.DENSE, beg=0,
                           end=8)
        arr = MemoryArray(np.arange(8.0), base_address=(lane + 1) << 30,
                          elem_bytes=8, name=f"a{layer}{lane}")
        return tu, tu.add_mem_stream(arr), arr

    def test_consecutive_same_line_coalesces(self):
        arb = MemoryArbiter()
        tu, stream, arr = self._tu_with_streams(0, 0)
        for i in range(8):  # 8 elements x 8 B = one cache line
            arb.record_touch(tu, stream, arr.address_of(i))
        assert arb.total_touches == 8
        assert arb.total_line_requests == 1
        assert arb.total_bytes() == 64

    def test_line_revisits_are_new_requests(self):
        arb = MemoryArbiter()
        tu, stream, arr = self._tu_with_streams(0, 0)
        arb.record_touch(tu, stream, arr.address_of(0))
        arb.record_touch(tu, stream, (1 << 31))
        arb.record_touch(tu, stream, arr.address_of(0))
        assert arb.total_line_requests == 3

    def test_priority_order(self):
        """Leftmost layers first, lanes round-robin, config order."""
        arb = MemoryArbiter()
        tu1, s1, a1 = self._tu_with_streams(1, 0)
        tu0, s0, a0 = self._tu_with_streams(0, 0)
        arb.record_touch(tu1, s1, a1.address_of(0))
        arb.record_touch(tu0, s0, a0.address_of(0))
        order = arb.priority_order()
        assert order[0].layer == 0
        assert order[1].layer == 1

    def test_access_streams_export(self):
        arb = MemoryArbiter()
        tu, stream, arr = self._tu_with_streams(0, 0)
        arb.record_touch(tu, stream, arr.address_of(0))
        exported = arb.access_streams()
        assert len(exported) == 1
        assert exported[0].elem_bytes == 64
        assert exported[0].kind == "read"


class TestSizing:
    def test_rightmost_layers_get_deeper_queues(self):
        sizing = size_queues([2, 3], [100.0, 10000.0], 2048)
        assert sizing.entries(1) > sizing.entries(0)
        assert sizing.per_lane_bytes_used <= 2048

    def test_minimum_entries_guaranteed(self):
        sizing = size_queues([2, 2], [1.0, 1e9], 2048)
        assert sizing.entries(0) >= MIN_ENTRIES

    def test_storage_overflow_rejected(self):
        with pytest.raises(TMUConfigError):
            size_queues([8, 8], [1.0, 1.0], 100)

    def test_zero_volume_falls_back_to_even_split(self):
        sizing = size_queues([2, 2], [0.0, 0.0], 2048)
        assert sizing.entries(0) == sizing.entries(1)

    def test_utilization_bounded(self):
        sizing = size_queues([3, 4], [10.0, 80.0], 2048)
        assert 0.5 < sizing.utilization <= 1.0

    def test_alignment_validation(self):
        with pytest.raises(TMUConfigError):
            size_queues([2], [1.0, 2.0], 2048)
