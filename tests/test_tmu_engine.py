"""Engine semantics tests: ordering, hierarchy, env resolution."""

import numpy as np
import pytest

from repro.errors import TMUConfigError, TMURuntimeError
from repro.tmu import Event, LayerMode, Program, TmuEngine
from repro.tmu.program import ScalarOperand


def two_layer_program(rows=3, cols_per_row=2):
    """A program traversing a tiny dense matrix row by row."""
    prog = Program("nest", lanes=1)
    n = rows * cols_per_row
    data = prog.place_array(np.arange(float(n)), 8, "data")
    ptrs = prog.place_array(
        np.arange(rows + 1, dtype=np.int64) * cols_per_row, 4, "ptrs")

    l0 = prog.add_layer(LayerMode.SINGLE)
    row = l0.dns_fbrt(beg=0, end=rows)
    beg = row.add_mem_stream(ptrs, name="beg")
    end = row.add_mem_stream(ptrs, offset=1, name="end")
    l0.add_callback(Event.GBEG, "outer_beg", [])
    l0.add_callback(Event.GITE, "outer_ite", [])
    l0.add_callback(Event.GEND, "outer_end", [])

    l1 = prog.add_layer(LayerMode.SINGLE)
    col = l1.rng_fbrt(beg=beg, end=end)
    val = col.add_mem_stream(data, name="val")
    l1.add_callback(Event.GITE, "inner_ite", [l1.vec_operand([val])])
    l1.add_callback(Event.GEND, "inner_end", [])
    return prog


class TestOrdering:
    def test_loop_nest_order(self):
        """Callbacks fire exactly as the equivalent nested loop would
        (outQ serialization across TGs, Section 5.3)."""
        prog = two_layer_program(rows=2, cols_per_row=2)
        order = []
        engine = TmuEngine(prog)
        engine.run(lambda rec: order.append(rec.callback_id))
        assert order == [
            "outer_beg",
            "outer_ite", "inner_ite", "inner_ite", "inner_end",
            "outer_ite", "inner_ite", "inner_ite", "inner_end",
            "outer_end",
        ]

    def test_operand_values_in_order(self):
        prog = two_layer_program(rows=3, cols_per_row=2)
        seen = []
        engine = TmuEngine(prog)
        engine.run({"inner_ite": lambda r: seen.append(r.operands[0][0])})
        assert seen == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]

    def test_stats_layers(self):
        prog = two_layer_program(rows=3, cols_per_row=2)
        stats = TmuEngine(prog).run()
        assert stats.layer_iterations == [3, 6]
        assert stats.layer_activations == [1, 3]


class TestEnvResolution:
    def test_grandparent_stream_visible_at_leaf(self):
        """A layer-0 stream is resolvable as a scalar operand at layer
        2 (the fwd semantics)."""
        prog = Program("deep", lanes=1, max_layers=3)
        ids = prog.place_array(np.array([7.0, 8.0]), 8, "ids")
        ptr = prog.place_array(np.array([0, 1, 2]), 4, "ptr")

        l0 = prog.add_layer(LayerMode.SINGLE)
        root = l0.dns_fbrt(beg=0, end=2)
        label = root.add_mem_stream(ids, name="label")
        b0 = root.add_mem_stream(ptr, name="b0")
        e0 = root.add_mem_stream(ptr, offset=1, name="e0")

        l1 = prog.add_layer(LayerMode.SINGLE)
        mid = l1.rng_fbrt(beg=b0, end=e0)
        b1 = mid.add_mem_stream(ptr, name="b1")
        e1 = mid.add_mem_stream(ptr, offset=1, name="e1")

        l2 = prog.add_layer(LayerMode.SINGLE)
        leaf = l2.rng_fbrt(beg=b1, end=e1)
        leaf.add_mem_stream(ids, name="junk")
        l2.add_callback(Event.GITE, "leaf", [ScalarOperand(label)])

        seen = []
        TmuEngine(prog).run({"leaf": lambda r: seen.append(
            r.operands[0])})
        assert 7.0 in seen or 8.0 in seen

    def test_missing_operand_raises(self):
        prog = Program("broken", lanes=1)
        prog.place_array(np.zeros(4), 8, "a")
        l0 = prog.add_layer(LayerMode.SINGLE)
        l0.dns_fbrt(beg=0, end=2)
        stray_prog = Program("other", lanes=1)
        stray_arr = stray_prog.place_array(np.zeros(4), 8, "b")
        stray_l0 = stray_prog.add_layer(LayerMode.SINGLE)
        stray_tu = stray_l0.dns_fbrt(beg=0, end=2)
        stray = stray_tu.add_mem_stream(stray_arr, name="stray")
        l0.add_callback(Event.GEND, "cb", [ScalarOperand(stray)])
        with pytest.raises(TMURuntimeError):
            TmuEngine(prog).run()


class TestHierarchicalPredicates:
    def test_merge_mask_gates_child_lanes(self):
        """DCSR-style hierarchy: the row-level DisjMrg predicate selects
        which lanes' column fibers merge below (Section 4.2)."""
        prog = Program("hier", lanes=2)
        # lane 0 has rows {0, 1}; lane 1 has rows {1}
        r0 = prog.place_array(np.array([0, 1]), 4, "rows0")
        r1 = prog.place_array(np.array([1]), 4, "rows1")
        p0 = prog.place_array(np.array([0, 1, 2]), 4, "p0")
        p1 = prog.place_array(np.array([0, 1]), 4, "p1")
        c0 = prog.place_array(np.array([5, 6]), 4, "c0")
        c1 = prog.place_array(np.array([5]), 4, "c1")

        l0 = prog.add_layer(LayerMode.DISJ_MRG)
        tu0 = l0.dns_fbrt(beg=0, end=2)
        k0 = tu0.add_mem_stream(r0, name="ridx0")
        b0 = tu0.add_mem_stream(p0, name="b0")
        e0 = tu0.add_mem_stream(p0, offset=1, name="e0")
        tu0.set_merge_key(k0)
        tu1 = l0.dns_fbrt(beg=0, end=1)
        k1 = tu1.add_mem_stream(r1, name="ridx1")
        b1 = tu1.add_mem_stream(p1, name="b1")
        e1 = tu1.add_mem_stream(p1, offset=1, name="e1")
        tu1.set_merge_key(k1)

        l1 = prog.add_layer(LayerMode.DISJ_MRG)
        ca = l1.rng_fbrt(beg=b0, end=e0)
        ka = ca.add_mem_stream(c0, name="col0")
        ca.set_merge_key(ka)
        cb = l1.rng_fbrt(beg=b1, end=e1)
        kb = cb.add_mem_stream(c1, name="col1")
        cb.set_merge_key(kb)
        l1.add_callback(Event.GITE, "point",
                        [l1.mask_operand(), l1.index_operand()])

        points = []
        TmuEngine(prog).run({"point": lambda r: points.append(
            (int(r.operands[0]), int(r.operands[1])))})
        # row 0: only lane 0 active -> (mask=01, col 5)
        # row 1: both lanes active; lane 0 holds col {6}, lane 1 {5}
        assert points == [(0b01, 5), (0b10, 5), (0b01, 6)]


class TestRuntimeGuards:
    def test_layer_overflow_at_engine(self):
        prog = two_layer_program()
        from repro.config import TMUConfig

        with pytest.raises(TMUConfigError):
            TmuEngine(prog, TMUConfig(layers=1))

    def test_collect_records_off_still_counts(self):
        prog = two_layer_program(rows=2, cols_per_row=2)
        engine = TmuEngine(prog, collect_records=False)
        stats = engine.run()
        assert stats.outq_records == 10  # all callbacks counted
        assert len(engine.outq.records) == 0
