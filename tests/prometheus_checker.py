"""Minimal Prometheus text-exposition (0.0.4) parser/validator.

Imported by the test suite and runnable standalone from CI::

    python -m tests.prometheus_checker metrics.txt

Exits non-zero (ValueError) on any malformed line.  Deliberately tiny:
it accepts exactly the subset :func:`repro.obs.live.to_prometheus`
promises to emit, so drift in either direction fails loudly.
"""

import re
import sys

_SAMPLE = re.compile(
    r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)'
    r'(?:\{(?P<labels>[^{}]*)\})? '
    r'(?P<value>NaN|[+-]Inf|[-+0-9.e]+)$')
_LABEL = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>[^"\\]*'
                    r'(?:\\[\\"n][^"\\]*)*)"(?:,|$)')
_UNESCAPE = {"\\\\": "\\", '\\"': '"', "\\n": "\n"}


def parse_exposition(text):
    """Parse exposition text into ``[(name, labels, value)]`` samples."""
    samples, typed = [], {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line or line.startswith("# HELP"):
            continue
        if line.startswith("# TYPE"):
            _, _, name, kind = line.split(None, 3)
            if kind not in ("counter", "gauge", "histogram", "summary"):
                raise ValueError(f"line {lineno}: bad TYPE {kind!r}")
            if name in typed:
                raise ValueError(f"line {lineno}: duplicate TYPE for {name}")
            typed[name] = kind
            continue
        m = _SAMPLE.match(line)
        if not m:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        labels = {}
        for lm in _LABEL.finditer(m.group("labels") or ""):
            val = re.sub(r'\\[\\"n]', lambda e: _UNESCAPE[e.group(0)],
                         lm.group("val"))
            labels[lm.group("key")] = val
        value = float(m.group("value").replace("Inf", "inf"))
        samples.append((m.group("name"), labels, value))
    if not samples:
        raise ValueError("no samples found")
    return samples


if __name__ == "__main__":
    body = open(sys.argv[1]).read() if len(sys.argv) > 1 else sys.stdin.read()
    parsed = parse_exposition(body)
    print(f"ok: {len(parsed)} samples, "
          f"{len({name for name, _, _ in parsed})} series names")
