"""Smoke tests: every shipped example runs to completion.

The examples double as integration tests of the public API — each one
asserts its own correctness internally, so a zero exit status means the
walkthrough's claims hold.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_every_example_is_covered():
    assert set(ALL_EXAMPLES) == {
        "quickstart.py",
        "spmv_acceleration.py",
        "kway_merge_spkadd.py",
        "tensor_decomposition.py",
        "custom_kernel.py",
        "roofline_report.py",
        "einsum_compiler.py",
        "outq_pipeline.py",
        "trace_spmv.py",
        "submit_sweep.py",
        "query_trajectory.py",
        "watch_service.py",
    }


@pytest.mark.parametrize("example", ALL_EXAMPLES)
def test_example_runs(example):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / example)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), f"{example} printed nothing"
