"""Context switching (Section 5.6) and area model (Section 6) tests."""

import numpy as np
import pytest

from repro.errors import TMUConfigError, TMURuntimeError
from repro.generators import uniform_random_matrix
from repro.programs import build_spmv_program
from repro.tmu import TmuEngine, save_context, restore_context
from repro.tmu.area import (
    PAPER_CORE_FRACTION,
    PAPER_LANE_MM2,
    PAPER_TOTAL_MM2,
    TmuAreaModel,
    paper_configuration,
)


class TestContext:
    def _engine(self, seed=3):
        a = uniform_random_matrix(20, 20, 3, seed=seed)
        b = np.random.default_rng(seed).random(20)
        built = build_spmv_program(a, b, lanes=2)
        return TmuEngine(built.program), built

    def test_save_restore_round_trip(self):
        engine, built = self._engine()
        engine.run(built.handlers)
        ctx = save_context(engine)
        assert ctx.program_name == "spmv"
        assert len(ctx.tu_contexts) == 3  # 1 row TU + 2 column TUs
        # restoring into an identically-configured engine succeeds
        engine2, _ = self._engine()
        restore_context(engine2, ctx)
        tus = [tu for g in engine2.groups for tu in g.tus]
        assert [t.iterations for t in tus] == [
            t.iterations for t in ctx.tu_contexts]

    def test_restore_into_wrong_program_rejected(self):
        engine, built = self._engine()
        ctx = save_context(engine)
        a = uniform_random_matrix(20, 20, 3, seed=9)
        other = build_spmv_program(a, np.zeros(20), lanes=2,
                                   name="different")
        with pytest.raises(TMURuntimeError):
            restore_context(TmuEngine(other.program), ctx)

    def test_context_records_outq_offset(self):
        engine, built = self._engine()
        engine.run(built.handlers)
        ctx = save_context(engine)
        assert ctx.outq_write_offset == engine.outq.total_bytes


class TestAreaModel:
    def test_paper_configuration_reproduces_totals(self):
        model = paper_configuration()
        assert model.total_mm2() == pytest.approx(PAPER_TOTAL_MM2,
                                                  rel=1e-6)
        assert model.lane_mm2() == pytest.approx(PAPER_LANE_MM2,
                                                 rel=1e-6)
        assert model.core_fraction() == pytest.approx(
            PAPER_CORE_FRACTION, rel=1e-6)

    def test_area_scales_with_lanes(self):
        small = TmuAreaModel(lanes=4)
        big = TmuAreaModel(lanes=16)
        assert small.total_mm2() < paper_configuration().total_mm2()
        assert big.total_mm2() > paper_configuration().total_mm2()

    def test_area_scales_with_storage(self):
        lean = TmuAreaModel(per_lane_storage_bytes=1024)
        fat = TmuAreaModel(per_lane_storage_bytes=4096)
        assert lean.total_mm2() < fat.total_mm2()

    def test_validation(self):
        with pytest.raises(TMUConfigError):
            TmuAreaModel(lanes=0)
        with pytest.raises(TMUConfigError):
            TmuAreaModel(per_lane_storage_bytes=-1)

    def test_remains_a_small_core_fraction_when_doubled(self):
        doubled = TmuAreaModel(lanes=16, per_lane_storage_bytes=4096)
        assert doubled.core_fraction() < 0.06
