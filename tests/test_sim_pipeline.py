"""Chunk-level outQ pipeline simulation tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.sim.pipeline import (
    chunk_times_from_totals,
    simulate_outq_pipeline,
)


class TestBasics:
    def test_single_chunk_serializes(self):
        r = simulate_outq_pipeline([10.0], [5.0])
        assert r.total_cycles == 15.0
        assert r.consumer_stalled == 10.0
        assert r.producer_stalled == 0.0

    def test_perfect_overlap_producer_bound(self):
        # producer 10/chunk, consumer 5/chunk: steady state hides the
        # consumer entirely after the first fill.
        r = simulate_outq_pipeline([10.0] * 20, [5.0] * 20)
        assert r.total_cycles == pytest.approx(20 * 10 + 5)
        assert r.read_to_write == pytest.approx(0.5)

    def test_consumer_bound_with_double_buffering(self):
        # consumer 10/chunk, producer 5/chunk: the producer runs ahead
        # by at most `buffers` chunks, then stalls.
        r = simulate_outq_pipeline([5.0] * 20, [10.0] * 20, buffers=2)
        assert r.total_cycles == pytest.approx(5 + 20 * 10)
        assert r.producer_stalled > 0

    def test_more_buffers_never_slower(self):
        rng = np.random.default_rng(0)
        produce = rng.uniform(1, 10, 50)
        consume = rng.uniform(1, 10, 50)
        t2 = simulate_outq_pipeline(produce, consume, buffers=2)
        t4 = simulate_outq_pipeline(produce, consume, buffers=4)
        t8 = simulate_outq_pipeline(produce, consume, buffers=8)
        assert t4.total_cycles <= t2.total_cycles + 1e-9
        assert t8.total_cycles <= t4.total_cycles + 1e-9

    def test_empty(self):
        r = simulate_outq_pipeline([], [])
        assert r.total_cycles == 0.0

    def test_validation(self):
        with pytest.raises(SimulationError):
            simulate_outq_pipeline([1.0], [1.0, 2.0])
        with pytest.raises(SimulationError):
            simulate_outq_pipeline([-1.0], [1.0])
        with pytest.raises(SimulationError):
            simulate_outq_pipeline([1.0], [1.0], buffers=0)


class TestProperties:
    @given(st.lists(st.floats(0.1, 20.0), min_size=1, max_size=60),
           st.lists(st.floats(0.1, 20.0), min_size=1, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_bounds(self, produce, consume):
        n = min(len(produce), len(consume))
        produce, consume = produce[:n], consume[:n]
        r = simulate_outq_pipeline(produce, consume)
        # never faster than either side alone, never slower than their sum
        assert r.total_cycles >= max(sum(produce), sum(consume)) - 1e-6
        assert r.total_cycles <= sum(produce) + sum(consume) + 1e-6

    @given(st.lists(st.floats(0.5, 10.0), min_size=2, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_chunk_completions_monotonic(self, times):
        r = simulate_outq_pipeline(times, list(reversed(times)))
        assert all(a <= b + 1e-9 for a, b in zip(
            r.chunk_completions, r.chunk_completions[1:]))

    @given(st.floats(10.0, 1000.0), st.floats(10.0, 1000.0),
           st.integers(1, 50))
    @settings(max_examples=40, deadline=None)
    def test_split_preserves_totals(self, tp, tc, chunks):
        p, c = chunk_times_from_totals(tp, tc, chunks, cv=0.8, seed=1)
        assert p.sum() == pytest.approx(tp)
        assert c.sum() == pytest.approx(tc)
        assert np.all(p > 0) and np.all(c > 0)


class TestAgreementWithClosedForm:
    def test_uniform_chunks_match_run_tmu_composition(self):
        """With uniform chunks the simulation reduces to the closed
        form max(producer, consumer) + one-chunk fill."""
        n = 64
        produce, consume = 7.0, 3.0
        r = simulate_outq_pipeline([produce] * n, [consume] * n)
        closed = max(n * produce, n * consume) + consume
        assert r.total_cycles == pytest.approx(closed, rel=0.02)

    def test_variability_costs_time(self):
        """Irregular chunks (heavy rows) lengthen the pipeline versus
        uniform chunks of the same aggregate work — the effect the
        closed form ignores."""
        p_u, c_u = chunk_times_from_totals(1000, 900, 50, cv=0.0)
        p_v, c_v = chunk_times_from_totals(1000, 900, 50, cv=1.2,
                                           seed=3)
        uniform = simulate_outq_pipeline(p_u, c_u)
        varied = simulate_outq_pipeline(p_v, c_v)
        assert varied.total_cycles >= uniform.total_cycles
