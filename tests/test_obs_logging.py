"""Tests for repro.obs.logging — structured JSON logs + correlation."""

import io
import json
import logging as pylog

import pytest

from repro.obs import logging as rlog
from repro.runtime import Runtime, SimTask


@pytest.fixture(autouse=True)
def _pristine_logging():
    """Strip any JSON handler installed by a test before/after it."""
    root = pylog.getLogger("repro")

    def scrub():
        for handler in list(root.handlers):
            if isinstance(handler, rlog._JsonHandler):
                root.removeHandler(handler)
        root.setLevel(pylog.NOTSET)

    scrub()
    yield
    scrub()


def capture(level=pylog.INFO):
    stream = io.StringIO()
    rlog.configure(stream=stream, level=level)
    return stream


def records(stream):
    return [json.loads(line) for line in
            stream.getvalue().splitlines() if line]


class TestJsonFormatter:
    def test_record_shape(self):
        stream = capture()
        log = rlog.get_logger("serve.test")
        rlog.log_event(log, pylog.INFO, "hello", cells=3, skipme=None)
        (rec,) = records(stream)
        assert rec["message"] == "hello"
        assert rec["level"] == "info"
        assert rec["logger"] == "repro.serve.test"
        assert rec["cells"] == 3
        assert "skipme" not in rec
        assert isinstance(rec["pid"], int)
        assert rec["ts"].endswith("+00:00")

    def test_exception_rides_as_error_field(self):
        stream = capture()
        log = rlog.get_logger("x")
        try:
            raise ValueError("boom")
        except ValueError:
            log.exception("failed")
        (rec,) = records(stream)
        assert rec["error"] == "ValueError('boom')"
        assert rec["level"] == "error"

    def test_below_level_is_dropped_cheaply(self):
        stream = capture(level=pylog.WARNING)
        rlog.log_event(rlog.get_logger("x"), pylog.INFO, "quiet")
        assert records(stream) == []


class TestCorrelation:
    def test_nesting_layers_and_unwinds(self):
        assert rlog.context() == {}
        with rlog.correlation(run_key="r1"):
            with rlog.correlation(job_id="j1", none_field=None):
                assert rlog.context() == {"run_key": "r1", "job_id": "j1"}
            assert rlog.context() == {"run_key": "r1"}
        assert rlog.context() == {}

    def test_context_stamps_every_record(self):
        stream = capture()
        log = rlog.get_logger("x")
        with rlog.correlation(run_key="r1", job_id="j9"):
            rlog.log_event(log, pylog.INFO, "inside")
        rlog.log_event(log, pylog.INFO, "outside")
        inside, outside = records(stream)
        assert inside["run_key"] == "r1" and inside["job_id"] == "j9"
        assert "run_key" not in outside

    def test_worker_context_ships_a_merged_copy(self):
        with rlog.correlation(run_key="r1"):
            shipped = rlog.worker_context({"job_id": "j2", "drop": None})
        assert shipped == {"run_key": "r1", "job_id": "j2"}
        # mutating the shipped dict never leaks back
        shipped["run_key"] = "clobbered"
        assert rlog.context() == {}


class TestConfigure:
    def test_reconfigure_replaces_not_stacks(self):
        first, second = io.StringIO(), io.StringIO()
        rlog.configure(stream=first)
        rlog.configure(stream=second)
        rlog.log_event(rlog.get_logger("x"), pylog.INFO, "once")
        assert first.getvalue() == ""
        assert len(records(second)) == 1
        assert rlog.configured()

    def test_string_levels_are_accepted(self):
        stream = io.StringIO()
        root = rlog.configure(stream=stream, level="warning")
        assert root.level == pylog.WARNING

    def test_unconfigured_library_stays_silent(self):
        assert not rlog.configured()
        # NullHandler: no "no handler" warning, no output anywhere
        rlog.log_event(rlog.get_logger("x"), pylog.INFO, "void")


class TestExecutorIntegration:
    def test_run_key_correlates_every_executor_record(self):
        stream = capture()
        rt = Runtime(jobs=1)
        report = rt.run([SimTask("spmv", "M1")])
        assert not report.failures
        recs = records(stream)
        assert recs, "executor emitted no log records"
        assert {r.get("run_key") for r in recs} == {rt.run_key}
        cells = [r for r in recs if r["kind"] == "cell"]
        assert cells and cells[0]["state"] == "simulated"
        assert cells[0]["done"] == cells[0]["total"] == 1
        # the correlation binding unwound with the run
        assert rlog.context() == {}
