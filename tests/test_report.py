"""Tests for the HTML flight recorder (repro.obs.report + repro report).

The load-bearing claim: every number in the report comes from the same
``repro.store.query`` rows as the CLI, so the stall-share section is
checked for *byte-identical* values against ``stall_shares`` — the
golden numbers ``repro query stalls`` prints.
"""

from __future__ import annotations

import re

import pytest

from repro import store as st
from repro.cli import main
from repro.obs.report import render_report, write_report
from repro.store import ExperimentStore
from repro.store.query import _fmt

from tests.test_store import bench_snapshot, layer_trace, manifest


@pytest.fixture
def populated(tmp_path):
    path = tmp_path / "db.sqlite"
    with ExperimentStore(path) as db:
        st.ingest_manifest(db, manifest("r1", created=100.0))
        st.ingest_snapshot(db, bench_snapshot("r1", 6.5, 100.0))
        st.ingest_snapshot(db, bench_snapshot("r2", 15.25, 200.0))
        st.ingest_trace(db, layer_trace("r1", stalls=20))
        st.ingest_trace(db, layer_trace("r2", stalls=33))
        yield db


class TestRenderReport:
    def test_is_self_contained(self, populated):
        page = render_report(populated)
        assert page.startswith("<!DOCTYPE html>")
        # no external assets of any kind: no scripts, links, imports,
        # images or remote URLs — the file must render from a mail
        # attachment or a CI artifact tab
        for banned in ("<script", "<link", "@import", "http://",
                       "https://", "<img", "url("):
            assert banned not in page, f"external asset: {banned}"

    def test_stall_numbers_match_repro_query_stalls(self, populated):
        rows, _ = st.stall_shares(populated, by="layer")
        assert rows, "fixture must produce stall rows"
        page = render_report(populated)
        for row in rows:
            # the exact strings `repro query stalls` would print
            for col in ("layer", "traces", "merge_steps", "stalls",
                        "stall_share"):
                assert f">{_fmt(row[col])}<" in page
        # the bar chart's direct value labels use the same formatter
        for row in rows:
            assert re.search(
                rf'class="val"[^>]*>{re.escape(_fmt(row["stall_share"]))}<',
                page)

    def test_sparkline_plots_latest_per_rev(self, populated):
        page = render_report(populated)
        rate_rows, _ = st.cells_per_sec(populated, by="rev")
        assert len(rate_rows) == 2
        assert page.count("<circle") == 2
        assert "r1: 6.5 cells/sec" in page
        assert "15.25" in page  # direct label on the last point

    def test_heroes_summarize_runs(self, populated):
        page = render_report(populated)
        run_rows, _ = st.runs_overview(populated)
        assert f'<div class="v">{len(run_rows)}</div>' in page
        # the manifest fixture has 4 cells, 1 failed
        assert '<div class="k">cells</div>' in page
        assert '<div class="k">failed cells</div>' in page

    def test_empty_store_renders_placeholders(self, tmp_path):
        with ExperimentStore(tmp_path / "empty.sqlite") as db:
            page = render_report(db, title="empty db")
        assert "no throughput history ingested" in page
        assert "no traces ingested" in page
        assert "no runs ingested" in page
        assert "<svg" not in page

    def test_title_and_label_values_are_escaped(self, tmp_path):
        with ExperimentStore(tmp_path / "db.sqlite") as db:
            page = render_report(db, title='<b>"evil"</b>')
        assert "<b>" not in page
        assert "&lt;b&gt;" in page


class TestWriteReportAndCli:
    def test_write_report_creates_parents(self, populated, tmp_path):
        out = write_report(populated, tmp_path / "deep/dir/report.html")
        assert out.exists()
        assert out.read_text(encoding="utf-8").startswith("<!DOCTYPE")

    def test_cli_report_end_to_end(self, populated, tmp_path, capsys):
        out = tmp_path / "report.html"
        code = main(["report", "--store", str(populated.path),
                     "--out", str(out), "--title", "ci nightly"])
        assert code == 0
        assert "report.html" in capsys.readouterr().out
        page = out.read_text(encoding="utf-8")
        assert "<title>ci nightly</title>" in page

    def test_cli_report_missing_store_is_an_error(self, tmp_path, capsys):
        code = main(["report", "--store", str(tmp_path / "nope.sqlite"),
                     "--out", str(tmp_path / "r.html")])
        assert code == 2
        assert "error:" in capsys.readouterr().err
