"""Traversal Unit FSM tests (Table 1, Section 5.1)."""

import numpy as np
import pytest

from repro.errors import TMUConfigError, TMURuntimeError
from repro.tmu.streams import MemoryArray
from repro.tmu.tu import PrimitiveKind, TraversalUnit, TuState


def make_array(data, name="arr"):
    return MemoryArray(np.asarray(data, dtype=np.float64),
                       base_address=1 << 30, elem_bytes=8, name=name)


def drain(tu):
    """Pull every slot of the current fiber."""
    slots = []
    while True:
        slot = tu.peek()
        if slot is None:
            break
        slots.append(tu.consume())
    return slots


class TestDenseTraversal:
    def test_iterates_beg_to_end(self):
        tu = TraversalUnit(0, 0, PrimitiveKind.DENSE, beg=2, end=6)
        tu.begin(2, 6)
        slots = drain(tu)
        assert [s[tu.ite] for s in slots] == [2, 3, 4, 5]
        assert tu.state is TuState.FEND

    def test_stride(self):
        tu = TraversalUnit(0, 0, PrimitiveKind.DENSE, beg=0, end=7,
                           stride=3)
        tu.begin(0, 7)
        assert [s[tu.ite] for s in drain(tu)] == [0, 3, 6]

    def test_control_tokens_count_ites_plus_end(self):
        tu = TraversalUnit(0, 0, PrimitiveKind.DENSE, beg=0, end=3)
        tu.begin(0, 3)
        drain(tu)
        assert tu.control_tokens == 4  # three 0s + one 1

    def test_rearm_for_next_fiber(self):
        tu = TraversalUnit(0, 0, PrimitiveKind.DENSE, beg=0, end=2)
        tu.begin(0, 2)
        drain(tu)
        tu.begin(0, 2)
        assert len(drain(tu)) == 2
        assert tu.fiber_count == 2

    def test_zero_stride_rejected(self):
        with pytest.raises(TMUConfigError):
            TraversalUnit(0, 0, PrimitiveKind.DENSE, beg=0, end=2,
                          stride=0)

    def test_dense_needs_constant_bounds(self):
        from repro.tmu.streams import IteStream

        with pytest.raises(TMUConfigError):
            TraversalUnit(0, 0, PrimitiveKind.DENSE, beg=IteStream(),
                          end=3)


class TestStreamsInTu:
    def test_mem_stream_per_iteration(self):
        arr = make_array([5.0, 6.0, 7.0])
        tu = TraversalUnit(0, 0, PrimitiveKind.DENSE, beg=0, end=3)
        vals = tu.add_mem_stream(arr)
        tu.begin(0, 3)
        assert [s[vals] for s in drain(tu)] == [5.0, 6.0, 7.0]

    def test_chained_mem_streams(self):
        idx = make_array([2, 0, 1], "idx")
        data = make_array([10.0, 20.0, 30.0], "data")
        tu = TraversalUnit(0, 0, PrimitiveKind.DENSE, beg=0, end=3)
        idx_s = tu.add_mem_stream(idx)
        val_s = tu.add_mem_stream(data, parent=idx_s)
        tu.begin(0, 3)
        assert [s[val_s] for s in drain(tu)] == [30.0, 10.0, 20.0]

    def test_lin_then_mem(self):
        data = make_array([0.0, 1.0, 2.0, 3.0, 4.0, 5.0], "data")
        tu = TraversalUnit(0, 0, PrimitiveKind.DENSE, beg=0, end=3)
        lin = tu.add_lin_stream(2, 0)         # i -> 2i
        val = tu.add_mem_stream(data, parent=lin)
        tu.begin(0, 3)
        assert [s[val] for s in drain(tu)] == [0.0, 2.0, 4.0]

    def test_map_stream(self):
        tu = TraversalUnit(0, 0, PrimitiveKind.DENSE, beg=0, end=3)
        mapped = tu.add_map_stream([7, 5, 3])
        tu.begin(0, 3)
        assert [s[mapped] for s in drain(tu)] == [7, 5, 3]

    def test_merge_key_must_belong(self):
        tu = TraversalUnit(0, 0, PrimitiveKind.DENSE, beg=0, end=3)
        other = TraversalUnit(0, 1, PrimitiveKind.DENSE, beg=0, end=3)
        with pytest.raises(TMUConfigError):
            tu.set_merge_key(other.ite)


class TestRangePrimitive:
    def test_offset_and_stride(self):
        # RngFbrT(beg, end, offset=1, stride=2) over [10, 15)
        tu = TraversalUnit(1, 0, PrimitiveKind.RANGE,
                           beg=_stream(), end=_stream(), offset=1,
                           stride=2)
        tu.begin(10, 15)
        assert [s[tu.ite] for s in drain(tu)] == [11, 13]

    def test_needs_stream_bounds(self):
        with pytest.raises(TMUConfigError):
            TraversalUnit(1, 0, PrimitiveKind.RANGE, beg=0, end=5)


class TestIndexPrimitive:
    def test_size_window(self):
        tu = TraversalUnit(1, 0, PrimitiveKind.INDEX, beg=_stream(),
                           size=4)
        # the engine arms IdxFbrT with [beg.head(), beg.head()+size)
        tu.begin(20, 20 + tu.size)
        assert [s[tu.ite] for s in drain(tu)] == [20, 21, 22, 23]

    def test_needs_constant_size(self):
        with pytest.raises(TMUConfigError):
            TraversalUnit(1, 0, PrimitiveKind.INDEX, beg=_stream(),
                          size=None)


class TestProtocol:
    def test_peek_before_begin(self):
        tu = TraversalUnit(0, 0, PrimitiveKind.DENSE, beg=0, end=1)
        with pytest.raises(TMURuntimeError):
            tu.peek()

    def test_consume_without_peek(self):
        tu = TraversalUnit(0, 0, PrimitiveKind.DENSE, beg=0, end=1)
        tu.begin(0, 1)
        with pytest.raises(TMURuntimeError):
            tu.consume()


def _stream():
    """A leftward stream stand-in for bound declarations."""
    from repro.tmu.streams import IteStream

    s = IteStream("parent")
    parent_tu = TraversalUnit(0, 0, PrimitiveKind.DENSE, beg=0, end=1)
    s.tu = parent_tu
    return s
