"""Tests for the repro.obs telemetry layer.

Covers the instrument semantics, the disabled-mode no-op path, registry
merging (the process-pool round trip), snapshot schema round-trips, and
the diff/regression helpers the ``bench-smoke`` CI gate is built on.
"""

import json

import pytest

from repro import obs
from repro.errors import ObsError
from repro.obs import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_TIMER,
    Histogram,
    Registry,
    add_deltas,
)
from repro.obs.snapshot import (
    SCHEMA,
    check_regression,
    diff_snapshots,
    load_snapshot,
    make_snapshot,
    render_diff,
    render_snapshot,
    validate_snapshot,
    write_bench_snapshot,
    write_snapshot,
)


@pytest.fixture(autouse=True)
def _telemetry_off():
    """Each test starts and ends with telemetry disabled."""
    obs.disable()
    yield
    obs.disable()


class TestInstruments:
    def test_counter_accumulates(self):
        reg = Registry()
        reg.counter("a.b").add()
        reg.counter("a.b").add(41)
        assert reg.counter("a.b").value == 42

    def test_gauge_tracks_high_water(self):
        reg = Registry()
        g = reg.gauge("depth")
        g.set(3)
        g.set(7)
        g.set(2)
        assert g.as_dict() == {"value": 2, "high_water": 7}

    def test_histogram_buckets_and_exact_moments(self):
        h = Histogram("h")
        for v in (0.5, 1, 2, 3, 1000):
            h.record(v)
        d = h.as_dict()
        assert d["count"] == 5
        assert d["total"] == pytest.approx(1006.5)
        assert d["min"] == 0.5
        assert d["max"] == 1000
        # 0.5 and 1 -> bucket 0; 2 -> 1; 3 -> 2; 1000 -> 10
        assert d["buckets"] == {"0": 2, "1": 1, "2": 1, "10": 1}
        assert h.mean == pytest.approx(1006.5 / 5)

    def test_timer_context_manager_accumulates(self):
        reg = Registry()
        t = reg.timer("work")
        with t:
            pass
        t.observe(0.5)
        d = t.as_dict()
        assert d["count"] == 2
        assert d["total_s"] >= 0.5
        assert d["max_s"] >= 0.5

    def test_kind_mismatch_raises(self):
        reg = Registry()
        reg.counter("x")
        with pytest.raises(ObsError, match="already registered"):
            reg.gauge("x")


class TestModuleSwitch:
    def test_disabled_hands_out_shared_null_instruments(self):
        assert not obs.enabled()
        assert obs.counter("a") is NULL_COUNTER
        assert obs.gauge("a") is NULL_GAUGE
        assert obs.histogram("a") is NULL_HISTOGRAM
        assert obs.timer("a") is NULL_TIMER
        # the no-ops really are no-ops
        obs.counter("a").add(5)
        obs.gauge("a").set(5)
        obs.histogram("a").record(5)
        with obs.timer("a"):
            pass

    def test_enabled_records_into_the_active_registry(self):
        reg = obs.enable()
        obs.counter("hits").add(3)
        assert reg.counter("hits").value == 3
        obs.disable()
        assert obs.active() is None

    def test_capture_restores_previous_state(self):
        outer = obs.enable()
        with obs.capture() as inner:
            obs.counter("c").add()
            assert obs.active() is inner
        assert obs.active() is outer
        assert inner.counter("c").value == 1
        assert outer.counter("c").value == 0

    def test_snapshot_while_disabled_is_schema_valid_and_empty(self):
        snap = obs.snapshot(meta={"note": "empty"})
        validate_snapshot(snap)
        assert snap["counters"] == {}
        assert snap["meta"]["note"] == "empty"


class TestRegistry:
    def test_prefixed_views_nest(self):
        reg = Registry()
        view = reg.prefixed("tmu.tg.layer0").prefixed("lane1")
        view.counter("iterations").add(4)
        assert reg.counter("tmu.tg.layer0.lane1.iterations").value == 4

    def test_merge_folds_worker_bodies(self):
        parent = Registry()
        parent.counter("n").add(1)
        parent.histogram("h").record(8)
        worker = Registry()
        worker.counter("n").add(2)
        worker.histogram("h").record(16)
        worker.gauge("g").set(5)
        worker.timer("t").observe(0.25)
        parent.merge(worker.as_dict())
        assert parent.counter("n").value == 3
        assert parent.histogram("h").count == 2
        assert parent.histogram("h").buckets == {3: 1, 4: 1}
        assert parent.gauge("g").high_water == 5
        assert parent.timer("t").total == pytest.approx(0.25)

    def test_merge_of_empty_worker_registry_is_a_no_op(self):
        parent = Registry()
        parent.counter("n").add(7)
        parent.histogram("h").record(3)
        before = parent.as_dict()
        parent.merge(Registry().as_dict())
        assert parent.as_dict() == before

    def test_merge_histograms_with_mismatched_bucket_sets(self):
        parent = Registry()
        for v in (0.5, 1):            # bucket 0 only
            parent.histogram("h").record(v)
        worker = Registry()
        for v in (100, 1000):         # buckets 7 and 10 only
            worker.histogram("h").record(v)
        parent.merge(worker.as_dict())
        h = parent.histogram("h")
        assert h.count == 4
        assert h.buckets == {0: 2, 7: 1, 10: 1}
        assert sum(h.buckets.values()) == h.count
        assert (h.min, h.max) == (0.5, 1000)
        # an empty-count body must not poison the exact envelope
        # (its as_dict reports min=max=0.0 as placeholders)
        h.merge(Registry().histogram("h").as_dict())
        assert h.count == 4 and h.min == 0.5

    def test_merge_timer_after_exception_unwound_starts(self):
        worker = Registry()
        t = worker.timer("work")
        with pytest.raises(RuntimeError):
            with t:
                raise RuntimeError("cell died")
        # the context manager observed on the way out and left no
        # dangling start behind
        assert t.count == 1 and t._starts == []
        parent = Registry()
        parent.merge(worker.as_dict())
        merged = parent.timer("work")
        assert merged.count == 1
        assert merged.min == merged.max == pytest.approx(t.total)
        # a never-exited timer ships count=0; merging it is a no-op
        # rather than dragging min to the 0.0 placeholder
        zombie = Registry()
        zombie.timer("work").__enter__()
        parent.merge(zombie.as_dict())
        assert parent.timer("work").count == 1
        assert parent.timer("work").min == pytest.approx(t.total)

    def test_add_deltas_never_double_counts(self):
        reg = Registry()
        seen: dict = {}
        add_deltas(reg.prefixed("c"), {"lines": 10}, seen)
        add_deltas(reg.prefixed("c"), {"lines": 10}, seen)  # unchanged
        add_deltas(reg.prefixed("c"), {"lines": 15}, seen)
        assert reg.counter("c.lines").value == 15


class TestSnapshot:
    def _registry(self):
        reg = Registry()
        reg.counter("runs").add(2)
        reg.gauge("rate").set(1.5)
        reg.histogram("sizes").record(64)
        reg.timer("wall").observe(0.125)
        return reg

    def test_round_trip(self, tmp_path):
        snap = make_snapshot(self._registry(), meta={"scale": "small"})
        path = write_snapshot(snap, tmp_path / "run.json")
        loaded = load_snapshot(path)
        assert loaded == json.loads(json.dumps(snap))
        assert loaded["schema"] == SCHEMA
        assert loaded["meta"]["scale"] == "small"
        assert "rev" in loaded["meta"] and "python" in loaded["meta"]

    def test_bench_snapshot_named_after_rev(self, tmp_path):
        snap = make_snapshot(self._registry(), meta={"rev": "abc1234"})
        path = write_bench_snapshot(snap, tmp_path)
        assert path.name == "BENCH_abc1234.json"
        load_snapshot(path)

    @pytest.mark.parametrize(
        "mutate, match",
        [
            (lambda s: s.update(schema="repro.obs/0"), "unsupported"),
            (lambda s: s.pop("created_unix"), "created_unix"),
            (lambda s: s.pop("meta"), "meta"),
            (lambda s: s.pop("timers"), "timers"),
            (lambda s: s["counters"].update(bad="x"), "must be a number"),
            (lambda s: s["gauges"]["rate"].pop("high_water"), "missing fields"),
        ],
    )
    def test_validation_catches_violations(self, mutate, match):
        snap = make_snapshot(self._registry())
        mutate(snap)
        with pytest.raises(ObsError, match=match):
            validate_snapshot(snap)

    def test_render_dump_lists_every_metric(self):
        snap = make_snapshot(self._registry())
        text = render_snapshot(snap)
        for name in ("runs", "rate", "sizes", "wall"):
            assert name in text


class TestDiffAndGate:
    def _snap(self, cells_per_sec, runs=3):
        reg = Registry()
        reg.counter("runs").add(runs)
        reg.gauge("cells_per_sec").set(cells_per_sec)
        return make_snapshot(reg)

    def test_diff_rows(self):
        rows = diff_snapshots(self._snap(10.0), self._snap(12.0, runs=4))
        by_name = {r["metric"]: r for r in rows}
        assert by_name["cells_per_sec"]["delta"] == pytest.approx(2.0)
        assert by_name["cells_per_sec"]["ratio"] == pytest.approx(1.2)
        assert by_name["runs"]["delta"] == 1
        assert "cells_per_sec" in render_diff(rows)

    def test_diff_handles_one_sided_metrics(self):
        a = self._snap(10.0)
        b = self._snap(10.0)
        b["counters"]["only_b"] = 7
        rows = {r["metric"]: r for r in diff_snapshots(a, b)}
        assert rows["only_b"]["a"] is None
        assert rows["only_b"]["delta"] is None

    def test_gate_passes_within_bound(self):
        ok, msg = check_regression(
            self._snap(9.0),
            self._snap(10.0),
            metric="cells_per_sec",
            max_regression=0.2,
        )
        assert ok and msg.startswith("ok")

    def test_gate_fails_beyond_bound(self):
        ok, msg = check_regression(
            self._snap(7.0),
            self._snap(10.0),
            metric="cells_per_sec",
            max_regression=0.2,
        )
        assert not ok and msg.startswith("REGRESSION")

    def test_gate_fails_on_missing_metric(self):
        ok, msg = check_regression(
            self._snap(10.0),
            self._snap(10.0),
            metric="nonexistent",
            max_regression=0.2,
        )
        assert not ok and "missing" in msg

    def test_gate_lower_is_better_flips_direction(self):
        ok, _ = check_regression(
            self._snap(13.0),
            self._snap(10.0),
            metric="cells_per_sec",
            max_regression=0.2,
            higher_is_better=False,
        )
        assert not ok


def _two_layer_program(rows=3, cols_per_row=2):
    """A tiny dense row-by-row traversal (mirrors the engine tests)."""
    import numpy as np

    from repro.tmu.program import Event, LayerMode, Program

    prog = Program("nest", lanes=1)
    n = rows * cols_per_row
    data = prog.place_array(np.arange(float(n)), 8, "data")
    ptrs = prog.place_array(
        np.arange(rows + 1, dtype=np.int64) * cols_per_row, 4, "ptrs"
    )
    l0 = prog.add_layer(LayerMode.SINGLE)
    row = l0.dns_fbrt(beg=0, end=rows)
    beg = row.add_mem_stream(ptrs, name="beg")
    end = row.add_mem_stream(ptrs, offset=1, name="end")
    l0.add_callback(Event.GITE, "outer_ite", [])
    l1 = prog.add_layer(LayerMode.SINGLE)
    col = l1.rng_fbrt(beg=beg, end=end)
    val = col.add_mem_stream(data, name="val")
    l1.add_callback(Event.GITE, "inner_ite", [l1.vec_operand([val])])
    return prog


class TestEngineIntegration:
    def test_engine_run_publishes_matching_counters(self):
        from repro.tmu.engine import TmuEngine

        with obs.capture() as reg:
            engine = TmuEngine(_two_layer_program())
            stats = engine.run()
        body = reg.as_dict()
        assert body["counters"]["tmu.engine.runs"] == 1
        assert body["counters"]["tmu.outq.records"] == stats.outq_records
        assert body["counters"]["tmu.arbiter.lines"] == stats.memory_lines

    def test_rerun_uses_deltas_not_lifetime_totals(self):
        from repro.tmu.engine import TmuEngine

        engine = TmuEngine(_two_layer_program())
        with obs.capture() as first:
            stats = engine.run()
        with obs.capture() as second:
            engine.run()
        # Both captures see one run's worth of records, not cumulative.
        records = "tmu.outq.records"
        assert first.as_dict()["counters"][records] == stats.outq_records
        assert second.as_dict()["counters"][records] == stats.outq_records


class TestTimerSafety:
    """The timer context manager must survive exceptions and nesting."""

    def test_exception_in_body_still_observes(self):
        reg = Registry()
        t = reg.timer("work")
        with pytest.raises(RuntimeError):
            with t:
                raise RuntimeError("boom")
        assert t.as_dict()["count"] == 1

    def test_reentrant_nesting_observes_both_levels(self):
        reg = Registry()
        t = reg.timer("work")
        with t:
            with t:
                pass
        d = t.as_dict()
        assert d["count"] == 2
        # the outer interval contains the inner one
        assert d["max_s"] >= d["min_s"]

    def test_exit_without_enter_is_harmless(self):
        reg = Registry()
        t = reg.timer("work")
        t.__exit__(None, None, None)
        assert t.as_dict()["count"] == 0


class TestHistogramQuantile:
    def test_empty_histogram_is_zero(self):
        assert Histogram("h").quantile(0.5) == 0.0

    def test_q_out_of_range_raises(self):
        h = Histogram("h")
        h.record(1)
        with pytest.raises(ValueError, match="quantile"):
            h.quantile(1.5)

    def test_single_bucket_clamps_to_the_exact_envelope(self):
        h = Histogram("h")
        for _ in range(3):
            h.record(5)
        # bucket 3 spans (4, 8]; min == max == 5 pins every quantile
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert h.quantile(q) == 5.0

    def test_quantiles_are_monotone_and_bounded(self):
        h = Histogram("h")
        for v in (0.5, 1, 2, 3, 8, 100, 1000):
            h.record(v)
        qs = [h.quantile(q) for q in (0.1, 0.25, 0.5, 0.75, 0.95, 1.0)]
        assert qs == sorted(qs)
        assert all(0.5 <= v <= 1000 for v in qs)
        assert h.quantile(1.0) == 1000

    def test_mean_stays_exact(self):
        h = Histogram("h")
        for v in (1, 2, 3):
            h.record(v)
        assert h.mean == pytest.approx(2.0)


class TestBenchRev:
    """BENCH_<rev> naming: unknown fallback and the -dirty suffix."""

    def _fake_git(self, monkeypatch, *, rev="abc1234", status=""):
        import importlib
        import subprocess as sp

        # the package re-exports a snapshot() function that shadows the
        # submodule attribute, so resolve the module itself
        snapmod = importlib.import_module("repro.obs.snapshot")

        def fake_run(cmd, **kwargs):
            if rev is None:
                raise OSError("git not found")
            out = rev + "\n" if "rev-parse" in cmd else status
            return sp.CompletedProcess(cmd, 0, stdout=out, stderr="")

        monkeypatch.setattr(snapmod.subprocess, "run", fake_run)

    def test_clean_tree_uses_the_short_rev(self, monkeypatch):
        self._fake_git(monkeypatch)
        assert obs.bench_rev() == "abc1234"
        assert not obs.worktree_dirty()

    def test_dirty_tree_gets_the_suffix(self, monkeypatch):
        self._fake_git(monkeypatch, status=" M src/repro/cli.py\n")
        assert obs.worktree_dirty()
        assert obs.bench_rev() == "abc1234-dirty"

    def test_no_git_falls_back_to_unknown(self, monkeypatch):
        self._fake_git(monkeypatch, rev=None)
        assert obs.bench_rev() == "unknown"
        assert not obs.worktree_dirty()

    def test_bench_snapshot_filename_uses_fallback(self, monkeypatch, tmp_path):
        self._fake_git(monkeypatch, rev=None)
        snap = make_snapshot(Registry())
        snap["meta"].pop("rev", None)
        path = write_bench_snapshot(snap, tmp_path)
        assert path.name == "BENCH_unknown.json"

    def test_rerun_at_same_rev_suffixes_instead_of_overwriting(
            self, monkeypatch, tmp_path):
        self._fake_git(monkeypatch)
        names = []
        for _ in range(3):
            reg = Registry()
            reg.counter("x").add()
            names.append(write_bench_snapshot(
                make_snapshot(reg), tmp_path).name)
        assert names == ["BENCH_abc1234.json", "BENCH_abc1234-2.json",
                         "BENCH_abc1234-3.json"]
        # the first point survived untouched
        assert len(list(tmp_path.glob("BENCH_*.json"))) == 3
