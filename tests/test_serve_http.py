"""End-to-end over a live server: real sockets, real worker pool.

One module-scoped server on an ephemeral port backs the happy-path
tests; the quota test builds its own (unstarted) service because it
needs jobs that stay queued forever.
"""

from __future__ import annotations

import threading
import urllib.error
import urllib.request

import pytest

from repro.errors import ServeError
from repro.obs.live import PROM_CONTENT_TYPE
from repro.serve import ServeClient, SimService, make_server, make_sweep
from tests.prometheus_checker import parse_exposition


@pytest.fixture(scope="module")
def live(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve")
    service = SimService(state_dir=root / "state",
                         cache_dir=root / "cache", telemetry=True)
    service.start()
    server = make_server(service, port=0, quiet=True)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    port = server.server_address[1]
    yield ServeClient(f"http://127.0.0.1:{port}")
    server.shutdown()
    service.stop()


SWEEP = make_sweep(workloads=["spmv"], inputs=["M1", "M2"])


class TestEndToEnd:
    def test_healthz(self, live):
        health = live.health()
        assert health["ok"] is True
        assert health["schema"] == "repro.serve/1"

    def test_submit_wait_fetch(self, live):
        job = live.submit(SWEEP, client="pytest")
        assert job["_created"] is True

        # results are refused until the job is terminal
        if job["state"] in ("pending", "running"):
            with pytest.raises(ServeError, match="409"):
                live.result(job["id"])

        job = live.wait(job["id"], timeout=120)
        assert job["state"] == "done"
        assert job["completed"] == job["total"] == 2

        result = live.result(job["id"])
        assert result["missing"] == 0
        assert len(result["records"]) == 2
        assert all(r is not None for r in result["records"].values())
        # record keys are the content hashes of the cells
        assert set(result["records"]) == set(job["cells"])

    def test_resubmit_is_idempotent(self, live):
        first = live.submit(SWEEP, client="pytest")
        first = live.wait(first["id"], timeout=120)
        # same cells, different phrasing: permuted inputs, other client
        again = live.submit(
            make_sweep(workloads=["spmv"], inputs=["M2", "M1"]),
            client="someone-else")
        assert again["_created"] is False
        assert again["id"] == first["id"]
        assert again["state"] == "done"

    def test_events_poll_and_stream(self, live):
        job = live.submit(SWEEP)
        live.wait(job["id"], timeout=120)
        polled = live.events(job["id"])
        kinds = [e["event"] for e in polled["events"]]
        assert kinds[0] in ("submitted", "resubmitted")
        assert kinds[-1] == "done"
        assert polled["next"] == len(kinds)
        # paging: nothing new past the cursor
        assert live.events(job["id"], since=polled["next"])["events"] \
            == []
        # the follow stream replays the journal and terminates on its
        # own because the job is already terminal
        streamed = list(live.stream_events(job["id"]))
        assert [e["event"] for e in streamed] == kinds

    def test_job_listing_and_stats(self, live):
        job = live.submit(SWEEP)
        live.wait(job["id"], timeout=120)
        assert any(j["id"] == job["id"] for j in live.jobs())
        stats = live.stats()
        assert stats["jobs"].get("done", 0) >= 1
        assert stats["telemetry"]["schema"] == "repro.obs/1"

    def test_unknown_job_is_404(self, live):
        with pytest.raises(ServeError, match="404"):
            live.job("f" * 64)
        with pytest.raises(ServeError, match="404"):
            live.result("f" * 64)
        with pytest.raises(ServeError, match="404"):
            live.cancel("f" * 64)

    def test_malformed_sweep_is_400(self, live):
        with pytest.raises(ServeError, match="400"):
            live.submit({"workloads": ["nope"]})
        with pytest.raises(ServeError, match="400"):
            live.submit(make_sweep(workloads=["spmv"],
                                   inputs=["bogus"]))


def _raw_get(url: str) -> tuple[int, dict, str]:
    """GET without the JSON client: (status, headers, body text)."""
    try:
        with urllib.request.urlopen(url, timeout=30) as resp:
            return resp.status, dict(resp.headers), \
                resp.read().decode("utf-8")
    except urllib.error.HTTPError as err:
        return err.code, dict(err.headers), err.read().decode("utf-8")


class TestObservabilityEndpoints:
    def test_live_metrics_scrape(self, live):
        """A real scrape mid-run: submit work, hit the other routes,
        then parse /metrics with the same checker CI uses."""
        # a sweep no other test submits, so these cells really run
        # (a resubmit of a done job would never touch the scheduler's
        # per-client counters)
        job = live.submit(make_sweep(workloads=["spmv"], inputs=["M3"]),
                          client="scrape-test")
        live.wait(job["id"], timeout=120)
        live.stats()
        status, headers, body = _raw_get(live.base_url + "/metrics")
        assert status == 200
        assert headers["Content-Type"] == PROM_CONTENT_TYPE
        samples = {(name, tuple(sorted(labels.items()))): value
                   for name, labels, value in parse_exposition(body)}

        def sample(name, **labels):
            return samples[(name, tuple(sorted(
                {"job": "repro-serve", **labels}.items())))]

        # scrape-time service gauges
        assert sample("repro_serve_queue_depth") >= 0
        assert sample("repro_serve_ready") == 1
        # per-state job gauges, zero-filled so every series exists
        states = {"pending", "running", "done", "failed", "cancelled"}
        for state in states:
            assert sample("repro_serve_jobs", state=state) >= 0
        assert sample("repro_serve_jobs", state="done") >= 1
        # per-route request counters + latency histograms from the
        # requests this test just made
        assert sample("repro_serve_http_requests", route="stats") >= 1
        assert sample("repro_serve_http_latency_ms_bucket",
                      route="stats", le="+Inf") >= 1
        assert sample("repro_serve_http_latency_ms_count",
                      route="stats") >= 1
        # the scheduler ran cells, so client attribution is live too
        assert sample("repro_serve_client_cells",
                      client="scrape-test") >= 1

    def test_healthz_and_readyz_agree_on_a_healthy_service(self, live):
        status, _, _ = _raw_get(live.base_url + "/healthz")
        assert status == 200
        status, _, body = _raw_get(live.base_url + "/readyz")
        assert status == 200
        assert '"ready": true' in body

    def test_readyz_flips_to_503_when_the_supervisor_stops(
            self, tmp_path):
        service = SimService(state_dir=tmp_path / "state")
        service.start()
        server = make_server(service, port=0, quiet=True)
        threading.Thread(target=server.serve_forever,
                         daemon=True).start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            status, _, _ = _raw_get(base + "/readyz")
            assert status == 200
            service.scheduler.stop()
            status, _, body = _raw_get(base + "/readyz")
            assert status == 503
            assert '"scheduler": false' in body
            # liveness is unaffected: the process still answers
            assert _raw_get(base + "/healthz")[0] == 200
        finally:
            server.shutdown()
            service.stop()


class TestQuotaOverHTTP:
    def test_quota_exceeded_is_429_and_cancel_frees_it(self, tmp_path):
        # workers never started: submissions stay PENDING and hold
        # their quota slot
        service = SimService(state_dir=tmp_path / "state", quota=1)
        server = make_server(service, port=0, quiet=True)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        client = ServeClient(
            f"http://127.0.0.1:{server.server_address[1]}")
        try:
            held = client.submit(make_sweep(workloads=["spmv"],
                                            inputs=["M1"]))
            with pytest.raises(ServeError, match="429"):
                client.submit(make_sweep(workloads=["spmv"],
                                         inputs=["M2"]))
            cancelled = client.cancel(held["id"])
            assert cancelled["state"] == "cancelled"
            # slot released: the second sweep is accepted now
            other = client.submit(make_sweep(workloads=["spmv"],
                                             inputs=["M2"]))
            assert other["_created"] is True
        finally:
            server.shutdown()
