"""The service core: sweep protocol, job state machine, queue.

Covers the queue/scheduler checklist items that need no execution:
priority ordering, per-client quota enforcement, content-addressed
job ids (idempotent dedup), journal round-trips and recovery
demotion.
"""

from __future__ import annotations

import pytest

from repro.errors import ServeError
from repro.runtime import SimTask
from repro.serve import (
    Job,
    JobQueue,
    JobState,
    JobStore,
    QuotaError,
    Submission,
    SweepSpec,
    job_id_for,
)


class TestSweepSpec:
    def test_expand_is_the_cross_product(self):
        spec = SweepSpec(workloads=("spmv", "spkadd"),
                         inputs=("M1", "M2"))
        tasks = spec.expand()
        assert len(tasks) == 4
        assert {(t.workload, t.input_id) for t in tasks} == {
            ("spmv", "M1"), ("spmv", "M2"),
            ("spkadd", "M1"), ("spkadd", "M2")}

    def test_default_inputs_are_the_suite(self):
        from repro.eval.workloads import inputs_for

        tasks = SweepSpec(workloads=("spmv",)).expand()
        assert len(tasks) == len(inputs_for("spmv"))

    def test_cells_match_oneshot_cli_tasks(self):
        # the service must produce the exact cells the figure drivers
        # build, or results would not be shared through the cache
        tasks = SweepSpec(workloads=("spmv",), inputs=("M1",)).expand()
        direct = SimTask("spmv", "M1", scale="small")
        assert tasks[0].content_hash() == direct.content_hash()

    def test_machines_axis_expands(self):
        from repro.config import experiment_machine
        from repro.runtime import machine_to_dict

        machines = (
            machine_to_dict(experiment_machine("small")),
            machine_to_dict(
                experiment_machine("small").with_tmu(lanes=4)),
        )
        tasks = SweepSpec(workloads=("spmv",), inputs=("M1",),
                          machines=machines).expand()
        assert len(tasks) == 2
        assert len({t.content_hash() for t in tasks}) == 2

    def test_rejects_unknowns(self):
        with pytest.raises(ServeError):
            SweepSpec(workloads=())
        with pytest.raises(ServeError):
            SweepSpec(workloads=("spmv",), scale="huge")
        with pytest.raises(ServeError):
            SweepSpec(workloads=("spmv",), variants=("warp",))
        with pytest.raises(ServeError):
            SweepSpec(workloads=("nope",)).expand()
        with pytest.raises(ServeError):
            SweepSpec(workloads=("spmv",), inputs=("T1",)).expand()
        with pytest.raises(ServeError):
            SweepSpec.from_dict({"workloads": ["spmv"], "zap": 1})

    def test_roundtrip_through_wire_dict(self):
        spec = SweepSpec(workloads=("spmv",), inputs=("M1", "M2"),
                         variants=("tmu", "baseline"), seed=3)
        again = SweepSpec.from_dict(spec.as_dict())
        assert [t.content_hash() for t in again.expand()] == \
            [t.content_hash() for t in spec.expand()]

    def test_job_id_ignores_spec_phrasing(self):
        a = SweepSpec(workloads=("spmv", "spkadd"), inputs=("M1",))
        b = SweepSpec(workloads=("spkadd", "spmv"), inputs=("M1",))
        assert job_id_for(a.expand()) == job_id_for(b.expand())
        c = SweepSpec(workloads=("spmv",), inputs=("M1",))
        assert job_id_for(c.expand()) != job_id_for(a.expand())

    def test_submission_validation(self):
        with pytest.raises(ServeError):
            Submission.from_dict({"no_sweep": {}})
        with pytest.raises(ServeError):
            Submission.from_dict({"sweep": {"workloads": ["spmv"]},
                                  "client": "../escape"})
        sub = Submission.from_dict({
            "sweep": {"workloads": ["spmv"], "inputs": ["M1"]},
            "client": "ci", "priority": 7})
        assert sub.client == "ci" and sub.priority == 7
        assert len(sub.tasks) == 1


class TestJobStateMachine:
    def test_happy_path(self):
        job = Job(id="j1", cells=["a", "b"])
        assert job.state is JobState.PENDING
        job.advance(JobState.RUNNING)
        assert job.started_at is not None
        job.advance(JobState.DONE)
        assert job.state.terminal and job.finished_at is not None

    def test_illegal_transitions_raise(self):
        job = Job(id="j1")
        with pytest.raises(ServeError):
            job.advance(JobState.DONE)       # pending -> done
        job.advance(JobState.RUNNING)
        job.advance(JobState.DONE)
        with pytest.raises(ServeError):
            job.advance(JobState.PENDING)    # done is final

    def test_reopen_resets_progress(self):
        job = Job(id="j1", cells=["a", "b"])
        job.advance(JobState.RUNNING)
        job.completed = job.simulated = 2
        job.advance(JobState.FAILED)
        job.error = "boom"
        job.reopen()
        assert job.state is JobState.PENDING
        assert job.completed == 0 and job.error is None


class TestJobQueue:
    def test_priority_then_fifo(self):
        q = JobQueue()
        q.push("low", client="a", priority=0)
        q.push("high", client="a", priority=5)
        q.push("mid", client="a", priority=1)
        q.push("low2", client="a", priority=0)
        order = [q.pop(timeout=0.1) for _ in range(4)]
        assert order == ["high", "mid", "low", "low2"]
        assert q.pop(timeout=0.05) is None

    def test_quota_enforced_per_client(self):
        q = JobQueue(quota=2)
        q.push("j1", client="ci")
        q.push("j2", client="ci")
        with pytest.raises(QuotaError):
            q.push("j3", client="ci")
        q.push("j4", client="other")     # other clients unaffected
        q.push("j5", client="ci", enforce_quota=False)  # recovery path
        assert q.active("ci") == 3

    def test_release_frees_quota(self):
        q = JobQueue(quota=1)
        q.push("j1", client="ci")
        assert q.pop(timeout=0.1) == "j1"
        with pytest.raises(QuotaError):
            q.push("j2", client="ci")    # still active until released
        q.release("ci")
        q.push("j2", client="ci")
        assert q.pop(timeout=0.1) == "j2"

    def test_duplicate_push_keeps_one_entry(self):
        q = JobQueue()
        q.push("j1", client="ci")
        q.push("j1", client="ci")
        assert q.depth == 1
        assert q.active("ci") == 1

    def test_cancel_tombstones_queued_entry(self):
        q = JobQueue()
        q.push("j1", client="ci", priority=9)
        q.push("j2", client="ci")
        assert q.cancel("j1") is True
        q.release("ci")                  # caller owns the dead slot
        assert q.pop(timeout=0.1) == "j2"
        assert q.cancel("j2") is False   # already popped


class TestJobStore:
    def test_roundtrip_and_list(self, tmp_path):
        store = JobStore(tmp_path)
        job = Job(id="a" * 64, client="ci", cells=["h1", "h2"],
                  sweep={"workloads": ["spmv"]})
        store.put(job)
        again = store.get(job.id)
        assert again.as_dict() == job.as_dict()
        assert [j.id for j in store.list()] == [job.id]
        assert store.get("b" * 64) is None

    def test_event_journal_appends_and_pages(self, tmp_path):
        store = JobStore(tmp_path)
        store.append_event("j1", {"event": "submitted"})
        store.append_event("j1", {"event": "started"})
        events = store.events("j1")
        assert [e["event"] for e in events] == ["submitted", "started"]
        assert all("ts" in e for e in events)
        assert store.events("j1", since=1)[0]["event"] == "started"
        assert store.events("unknown") == []

    def test_recover_demotes_running_jobs(self, tmp_path):
        store = JobStore(tmp_path)
        running = Job(id="r" * 64, cells=["h1"])
        running.advance(JobState.RUNNING)
        running.completed = 1
        store.put(running)
        done = Job(id="d" * 64, cells=["h1"])
        done.advance(JobState.RUNNING)
        done.advance(JobState.DONE)
        store.put(done)
        pending = store.recover()
        assert [j.id for j in pending] == [running.id]
        revived = store.get(running.id)
        assert revived.state is JobState.PENDING
        assert revived.completed == 0 and revived.requeues == 1
        events = store.events(running.id)
        assert events[-1]["event"] == "recovered"

    def test_delete_removes_record_and_journal(self, tmp_path):
        store = JobStore(tmp_path)
        job = Job(id="a" * 64)
        store.put(job)
        store.append_event(job.id, {"event": "submitted"})
        store.delete(job.id)
        assert store.get(job.id) is None
        assert store.events(job.id) == []
