"""Memory hierarchy and interval core model tests."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.core import CycleBreakdown, IntervalCoreModel
from repro.sim.memsys import (
    MemoryHierarchy,
    llc_only_profile,
    sequentiality,
)
from repro.sim.trace import (
    AccessStream,
    AddressSpace,
    KernelTrace,
    indexed_addresses,
    interleave,
    strided_addresses,
)


class TestTraceHelpers:
    def test_address_space_disjoint(self):
        space = AddressSpace()
        a = space.place(100)
        b = space.place(100)
        assert a != b and abs(a - b) >= 100

    def test_big_allocation_spans_regions(self):
        space = AddressSpace()
        a = space.place(3 << 30)
        b = space.place(8)
        assert b - a >= 3 << 30

    def test_strided_and_indexed(self):
        assert strided_addresses(100, 3, 8).tolist() == [100, 108, 116]
        assert indexed_addresses(0, [2, 0], 4).tolist() == [8, 0]

    def test_interleave(self):
        a = np.array([1, 3])
        b = np.array([2, 4])
        assert interleave(a, b).tolist() == [1, 2, 3, 4]

    def test_interleave_length_check(self):
        with pytest.raises(SimulationError):
            interleave(np.array([1]), np.array([1, 2]))

    def test_stream_validation(self):
        with pytest.raises(SimulationError):
            AccessStream(np.array([0]), 8, kind="modify")
        with pytest.raises(SimulationError):
            AccessStream(np.array([0]), 0)

    def test_trace_totals(self):
        trace = KernelTrace("t", scalar_ops=10, vector_ops=5, loads=3,
                            stores=2, branches=1)
        assert trace.total_instructions() == 21

    def test_arithmetic_intensity(self):
        trace = KernelTrace("t", flops=100.0, streams=[
            AccessStream(np.zeros(10, dtype=np.int64), 8)])
        assert trace.arithmetic_intensity() == pytest.approx(100 / 80)


class TestHierarchy:
    def test_sequential_stream_mostly_hits_l1(self, small_machine):
        h = MemoryHierarchy(small_machine)
        stream = AccessStream(strided_addresses(1 << 30, 1000, 8), 8,
                              "read", "seq")
        profile = h.profile(KernelTrace("t", streams=[stream]))
        s = profile.streams[0]
        # 8 elements per line -> ~7/8 of deduped accesses hit nothing
        # (consecutive same-line collapse), all lines are cold misses
        assert s.mem_accesses > 0
        assert s.prefetch_coverage > 0.5  # sequential: covered

    def test_random_stream_misses_small_cache(self, small_machine):
        rng = np.random.default_rng(0)
        addrs = indexed_addresses(1 << 30, rng.integers(0, 1 << 20, 5000),
                                  8)
        h = MemoryHierarchy(small_machine)
        profile = h.profile(KernelTrace("t", streams=[
            AccessStream(addrs, 8, "read", "rand", dependent=True)]))
        s = profile.streams[0]
        assert s.mem_accesses > 0.8 * s.accesses
        assert s.prefetch_coverage == 0.0  # dependent: not covered

    def test_sampling_extrapolates(self, small_machine):
        addrs = strided_addresses(1 << 30, 200_000, 8)
        full = MemoryHierarchy(small_machine).profile(
            KernelTrace("t", streams=[AccessStream(addrs, 8)]))
        sampled = MemoryHierarchy(small_machine, sample_window=5_000
                                  ).profile(
            KernelTrace("t", streams=[AccessStream(addrs, 8)]))
        assert sampled.mem_lines == pytest.approx(full.mem_lines,
                                                  rel=0.05)

    def test_llc_only_profile(self, small_machine):
        addrs = strided_addresses(1 << 30, 1000, 8)
        profile = llc_only_profile(small_machine,
                                   [AccessStream(addrs, 8)])
        s = profile.streams[0]
        assert s.l1_hits == 0 and s.l2_hits == 0

    def test_sequentiality_metric(self):
        assert sequentiality(np.arange(100)) == 1.0
        assert sequentiality(np.arange(100) * 50) == 0.0
        assert sequentiality(np.array([1])) == 0.0

    def test_sequentiality_edge_cases(self):
        # empty and single-access streams have no deltas to measure
        assert sequentiality(np.zeros(0, dtype=np.int64)) == 0.0
        assert sequentiality(np.array([42])) == 0.0
        # backwards and small-stride streams still count as sequential
        assert sequentiality(np.arange(100)[::-1]) == 1.0
        assert sequentiality(np.arange(0, 200, 2)) == 1.0
        # exactly at the +-2 line threshold vs just beyond it
        assert sequentiality(np.array([0, 2, 4])) == 1.0
        assert sequentiality(np.array([0, 3, 6])) == 0.0

    def test_average_load_latency_empty_profile(self, small_machine):
        from repro.sim.memsys import AccessProfile, StreamProfile

        # no streams at all -> no loads -> zero, not a division error
        assert AccessProfile().average_load_latency(small_machine) == 0.0
        # write-only and zero-access streams are excluded the same way
        profile = AccessProfile(streams=[
            StreamProfile(label="w", kind="write", dependent=False,
                          accesses=100, mem_accesses=100),
            StreamProfile(label="r0", kind="read", dependent=False,
                          accesses=0),
        ])
        assert profile.average_load_latency(small_machine) == 0.0

    def test_average_load_latency_single_access(self, small_machine):
        from repro.sim.memsys import AccessProfile, StreamProfile

        # one L1-hitting load: the mean is exactly the L1 latency
        profile = AccessProfile(streams=[
            StreamProfile(label="r", kind="read", dependent=False,
                          accesses=1, l1_hits=1)])
        assert profile.average_load_latency(small_machine) == (
            pytest.approx(small_machine.l1d.latency))
        # one cold miss: the mean is the full memory latency
        profile = AccessProfile(streams=[
            StreamProfile(label="r", kind="read", dependent=False,
                          accesses=1, mem_accesses=1)])
        assert profile.average_load_latency(small_machine) == (
            pytest.approx(small_machine.memory_latency_cycles()))

    def test_average_load_latency_full_prefetch_coverage(
            self, small_machine):
        from repro.sim.memsys import AccessProfile, StreamProfile

        # coverage 1.0 serves every off-chip miss at ~L2 latency
        profile = AccessProfile(streams=[
            StreamProfile(label="r", kind="read", dependent=False,
                          accesses=10, mem_accesses=10,
                          prefetch_coverage=1.0)])
        assert profile.average_load_latency(small_machine) == (
            pytest.approx(small_machine.l2.latency))
        # and it beats the uncovered version of the same stream
        uncovered = AccessProfile(streams=[
            StreamProfile(label="r", kind="read", dependent=False,
                          accesses=10, mem_accesses=10)])
        assert (profile.average_load_latency(small_machine)
                < uncovered.average_load_latency(small_machine))


class TestIntervalCore:
    def _run(self, machine, trace):
        profile = MemoryHierarchy(machine).profile(trace)
        return IntervalCoreModel(machine).run(trace, profile)

    def test_compute_bound_kernel_commits(self, small_machine):
        trace = KernelTrace("t", scalar_ops=100_000, branches=100,
                            streams=[])
        result = self._run(small_machine, trace)
        commit, fe, be = result.breakdown.normalized() if isinstance(
            result, CycleBreakdown) is False else result.normalized()
        assert commit > 0.9
        assert result.total == pytest.approx(
            100_100 / small_machine.core.commit_width, rel=0.2)

    def test_branchy_kernel_pays_frontend(self, small_machine):
        trace = KernelTrace("t", scalar_ops=1000, branches=10_000,
                            datadep_branches=10_000)
        result = self._run(small_machine, trace)
        commit, fe, be = result.normalized()
        assert fe > 0.5

    def test_memory_bound_kernel_pays_backend(self, small_machine):
        rng = np.random.default_rng(1)
        addrs = indexed_addresses(
            1 << 30, rng.integers(0, 1 << 22, 20_000), 8)
        trace = KernelTrace(
            "t", scalar_ops=20_000, loads=20_000,
            streams=[AccessStream(addrs, 8, "read", "rand",
                                  dependent=True)],
            dependent_load_fraction=1.0)
        result = self._run(small_machine, trace)
        commit, fe, be = result.normalized()
        assert be > 0.7

    def test_datadep_exceeding_branches_rejected(self, small_machine):
        trace = KernelTrace("t", branches=1, datadep_branches=2)
        with pytest.raises(SimulationError):
            self._run(small_machine, trace)

    def test_bandwidth_floor_enforced(self, small_machine):
        # 10 MB of cold traffic cannot move faster than the per-core
        # bandwidth share allows.
        addrs = strided_addresses(1 << 30, 10_000_000 // 8, 8)
        trace = KernelTrace("t", scalar_ops=10,
                            streams=[AccessStream(addrs, 8)])
        result = self._run(small_machine, trace)
        min_cycles = 10_000_000 / small_machine.bytes_per_cycle_per_core()
        assert result.total >= 0.9 * min_cycles

    def test_gflops_and_bandwidth_reporting(self, small_machine):
        trace = KernelTrace("t", scalar_ops=1000, flops=2000.0,
                            streams=[AccessStream(
                                strided_addresses(1 << 30, 1000, 8), 8)])
        result = self._run(small_machine, trace)
        assert result.gflops(2.4) > 0
        assert result.bandwidth_gbps(2.4) > 0
        assert result.arithmetic_intensity() > 0
