"""Traversal Group FSM tests (Table 3, Section 5.2)."""

import numpy as np
import pytest

from repro.errors import TMUConfigError, TMURuntimeError
from repro.tmu.streams import MemoryArray
from repro.tmu.tg import GroupStep, LayerMode, TraversalGroup
from repro.tmu.tu import PrimitiveKind, TraversalUnit


def fiber_tu(lane, indices, layer=0):
    """A TU whose merge key follows the given coordinate sequence."""
    indices = np.asarray(indices, dtype=np.float64)
    tu = TraversalUnit(layer, lane, PrimitiveKind.DENSE, beg=0,
                       end=len(indices))
    arr = MemoryArray(indices, base_address=(lane + 1) << 30,
                      elem_bytes=4, name=f"idx{lane}")
    key = tu.add_mem_stream(arr, name=f"key{lane}")
    tu.set_merge_key(key)
    tu.begin(0, len(indices))
    return tu


class TestModes:
    def test_single_iterates_one_lane(self):
        tu = fiber_tu(0, [4, 7, 9])
        tg = TraversalGroup(0, LayerMode.SINGLE, [tu])
        steps = list(tg.iterate(0b1))
        assert len(steps) == 3
        assert all(s.mask == 1 for s in steps)
        assert tg.gend_count == 1

    def test_single_rejects_multiple_lanes(self):
        with pytest.raises(TMUConfigError):
            TraversalGroup(0, LayerMode.SINGLE,
                           [fiber_tu(0, [1]), fiber_tu(1, [1])])

    def test_lockstep_pads_with_mask(self):
        tus = [fiber_tu(0, [1, 2, 3]), fiber_tu(1, [5, 6])]
        tg = TraversalGroup(0, LayerMode.LOCKSTEP, tus)
        steps = list(tg.iterate(0b11))
        assert [s.mask for s in steps] == [0b11, 0b11, 0b01]

    def test_lockstep_respects_active_mask(self):
        tus = [fiber_tu(0, [1, 2]), fiber_tu(1, [5])]
        tg = TraversalGroup(0, LayerMode.LOCKSTEP, tus)
        steps = list(tg.iterate(0b01))  # only lane 0 active
        assert [s.mask for s in steps] == [0b01, 0b01]

    def test_empty_active_mask_rejected(self):
        tg = TraversalGroup(0, LayerMode.LOCKSTEP, [fiber_tu(0, [1])])
        with pytest.raises(TMURuntimeError):
            list(tg.iterate(0b0))

    def test_keep_selects_configured_lane(self):
        tus = [fiber_tu(0, [1, 2]), fiber_tu(1, [7, 8, 9])]
        tg = TraversalGroup(0, LayerMode.KEEP, tus, keep_lane=1)
        steps = list(tg.iterate(0b11))
        assert len(steps) == 3
        assert all(s.mask == 0b10 for s in steps)

    def test_keep_defaults_to_lowest_active(self):
        tus = [fiber_tu(0, [1, 2]), fiber_tu(1, [7])]
        tg = TraversalGroup(0, LayerMode.KEEP, tus)
        steps = list(tg.iterate(0b10))
        assert all(s.mask == 0b10 for s in steps)

    def test_keep_lane_bounds_checked(self):
        with pytest.raises(TMUConfigError):
            TraversalGroup(0, LayerMode.KEEP, [fiber_tu(0, [1])],
                           keep_lane=3)


class TestDisjunctiveMerge:
    def test_figure2_masks(self):
        # Fibers A = {0,2,3}, B = {0,1,3}: msk = 11, 01(B), 10(A), 11
        tus = [fiber_tu(0, [0, 2, 3]), fiber_tu(1, [0, 1, 3])]
        tg = TraversalGroup(0, LayerMode.DISJ_MRG, tus)
        steps = list(tg.iterate(0b11))
        assert [s.index for s in steps] == [0, 1, 2, 3]
        assert [s.mask for s in steps] == [0b11, 0b10, 0b01, 0b11]
        assert tg.merge_steps == 4

    def test_three_way(self):
        tus = [fiber_tu(0, [0, 5]), fiber_tu(1, [1, 5]),
               fiber_tu(2, [5])]
        tg = TraversalGroup(0, LayerMode.DISJ_MRG, tus)
        steps = list(tg.iterate(0b111))
        assert [s.index for s in steps] == [0, 1, 5]
        assert steps[-1].mask == 0b111

    def test_inactive_lane_ignored(self):
        tus = [fiber_tu(0, [0, 2]), fiber_tu(1, [1])]
        tg = TraversalGroup(0, LayerMode.DISJ_MRG, tus)
        steps = list(tg.iterate(0b01))
        assert [s.index for s in steps] == [0, 2]


class TestConjunctiveMerge:
    def test_intersection_only_emits_all_true(self):
        tus = [fiber_tu(0, [0, 2, 3]), fiber_tu(1, [0, 1, 3])]
        tg = TraversalGroup(0, LayerMode.CONJ_MRG, tus)
        steps = list(tg.iterate(0b11))
        assert [s.index for s in steps] == [0, 3]
        assert all(s.mask == 0b11 for s in steps)

    def test_ends_when_any_lane_exhausted(self):
        tus = [fiber_tu(0, [0]), fiber_tu(1, [0, 1, 2, 3])]
        tg = TraversalGroup(0, LayerMode.CONJ_MRG, tus)
        steps = list(tg.iterate(0b11))
        assert [s.index for s in steps] == [0]
        # non-emitting advances still counted as merge work
        assert tg.merge_steps >= 1

    def test_disjoint_fibers_emit_nothing(self):
        tus = [fiber_tu(0, [0, 2]), fiber_tu(1, [1, 3])]
        tg = TraversalGroup(0, LayerMode.CONJ_MRG, tus)
        assert list(tg.iterate(0b11)) == []


class TestGroupStep:
    def test_active_lanes(self):
        step = GroupStep(mask=0b101, index=0, slots=[None, None, None])
        assert step.active_lanes() == [0, 2]
