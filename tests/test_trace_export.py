"""Tests for the trace consumers: Perfetto export and the stall report.

The golden test records a real (tiny) SpMV run through the TMU engine
under ``obs.trace_capture`` and checks the full pipeline the CLI wires
together: record → ``repro.trace/1`` file → Perfetto JSON → stall
report, with the engine-summary totals agreeing with ``RunStats``.
"""

import json

import numpy as np
import pytest

from repro import obs
from repro.formats.csr import CsrMatrix
from repro.obs.export import (
    CORE_PHASES,
    fold_trace,
    stall_report,
    to_perfetto,
    write_perfetto,
)
from repro.programs.spmv import build_spmv_program
from repro.tmu.engine import TmuEngine


@pytest.fixture(autouse=True)
def _tracing_off():
    obs.disable_tracing()
    yield
    obs.disable_tracing()


@pytest.fixture(scope="module")
def spmv_run():
    """One traced SpMV run shared by the golden tests."""
    obs.disable_tracing()
    a = CsrMatrix.from_dense(np.array([[1.0, 0, 2], [0, 3, 0], [4, 0, 5]]))
    built = build_spmv_program(a, np.ones(3))
    with obs.trace_capture() as tracer:
        stats = TmuEngine(built.program).run(built.handlers)
        trace = obs.trace_snapshot(meta={"experiments": "spmv-golden"})
    np.testing.assert_allclose(built.result(), [3.0, 3.0, 9.0])
    return trace, stats, tracer


class TestPerfetto:
    def test_schema_valid_and_loadable(self, spmv_run):
        trace, _, _ = spmv_run
        obs.validate_trace(trace)
        doc = to_perfetto(trace)
        assert isinstance(doc["traceEvents"], list)
        assert doc["otherData"]["experiments"] == "spmv-golden"
        # Chrome-trace JSON must round-trip
        assert json.loads(json.dumps(doc)) == doc

    def test_process_and_thread_metadata(self, spmv_run):
        trace, _, _ = spmv_run
        events = to_perfetto(trace)["traceEvents"]
        procs = {
            e["pid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert procs[1] == "tmu (ticks)"
        threads = {
            e["args"]["name"]: (e["pid"], e["tid"])
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        # one swim lane per instrumented component, all under the tmu pid
        assert "tmu.engine" in threads
        assert any(t.startswith("tmu.tg.layer") for t in threads)
        assert any(t.startswith("tmu.tu.layer") for t in threads)
        assert all(pid == 1 for pid, _ in threads.values())
        tids = [tid for _, tid in threads.values()]
        assert len(set(tids)) == len(tids)

    def test_event_phase_shapes(self, spmv_run):
        trace, _, _ = spmv_run
        events = to_perfetto(trace)["traceEvents"]
        xs = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        counters = [e for e in events if e["ph"] == "C"]
        assert xs and instants and counters
        assert all("dur" in e for e in xs)
        assert all(e["s"] == "t" for e in instants)
        assert all(e["args"]["value"] is not None for e in counters)

    def test_write_perfetto(self, spmv_run, tmp_path):
        trace, _, _ = spmv_run
        path = write_perfetto(trace, tmp_path / "out" / "spmv.perfetto.json")
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]


class TestFold:
    def test_summaries_match_run_stats(self, spmv_run):
        trace, stats, _ = spmv_run
        folded = fold_trace(trace)
        run = folded["summaries"][("tmu.engine", "run")]
        assert run["iterations"] == stats.total_iterations
        assert run["records"] == stats.outq_records
        assert run["memory_lines"] == stats.memory_lines

    def test_fiber_spans_are_not_treated_as_summaries(self, spmv_run):
        trace, _, _ = spmv_run
        folded = fold_trace(trace)
        names = {n for (_, n) in folded["summaries"]}
        assert names <= {"layer_summary", "summary", "run"}
        assert any(n == "fiber" for (_, n) in folded["durations"])

    def test_core_phases_sum_spans(self):
        trace = obs.make_trace(obs.Tracer())
        trace["events"] = [
            [0, 60, "X", "sim.core", "committing", None],
            [60, 30, "X", "sim.core", "frontend", None],
            [90, 10, "X", "sim.core", "backend", None],
            [100, 60, "X", "sim.core", "committing", None],
        ]
        folded = fold_trace(trace)
        assert folded["core_phases"] == {
            "committing": 120.0,
            "frontend": 30.0,
            "backend": 10.0,
        }
        assert set(folded["core_phases"]) == set(CORE_PHASES)


class TestStallReport:
    def test_sections_present(self, spmv_run):
        trace, stats, _ = spmv_run
        text = stall_report(trace)
        assert "stall attribution · spmv-golden" in text
        assert "TMU pipeline (per TG layer):" in text
        assert f"iterations={stats.total_iterations}" in text
        assert "memory arbiter:" in text
        assert "outQ:" in text
        assert "span durations (virtual ticks):" in text

    def test_core_decomposition_section(self):
        trace = obs.make_trace(obs.Tracer())
        trace["events"] = [
            [0, 75, "X", "sim.core", "committing", None],
            [75, 25, "X", "sim.core", "backend", None],
        ]
        text = stall_report(trace)
        assert "core cycle decomposition (Fig. 11):" in text
        assert "75.0%" in text
        assert "25.0%" in text

    def test_report_stays_exact_under_sampling_and_drops(self):
        a = CsrMatrix.from_dense(np.array([[1.0, 0, 2], [0, 3, 0], [4, 0, 5]]))
        built = build_spmv_program(a, np.ones(3))
        with obs.trace_capture(capacity=16, sample_every=4):
            stats = TmuEngine(built.program).run(built.handlers)
            trace = obs.trace_snapshot()
        assert trace["dropped"] > 0
        text = stall_report(trace)
        assert f"iterations={stats.total_iterations}" in text
