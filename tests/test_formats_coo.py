"""Tests for the COO format."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FormatError
from repro.formats.coo import CooMatrix, CooTensor


class TestConstruction:
    def test_sorted_lexicographically(self):
        t = CooMatrix((4, 4), [3, 0, 1], [0, 2, 1], [1.0, 2.0, 3.0])
        assert t.rows.tolist() == [0, 1, 3]
        assert t.cols.tolist() == [2, 1, 0]
        assert t.values.tolist() == [2.0, 3.0, 1.0]

    def test_duplicates_summed(self):
        t = CooMatrix((2, 2), [0, 0, 1], [1, 1, 0], [1.0, 2.5, 4.0])
        assert t.nnz == 2
        assert t.values.tolist() == [3.5, 4.0]

    def test_duplicates_kept_when_disabled(self):
        t = CooMatrix((2, 2), [0, 0], [1, 1], [1.0, 2.0],
                      sum_duplicates=False)
        assert t.nnz == 2

    def test_out_of_bounds_coordinate_rejected(self):
        with pytest.raises(FormatError):
            CooMatrix((2, 2), [0, 2], [0, 0], [1.0, 1.0])

    def test_negative_coordinate_rejected(self):
        with pytest.raises(FormatError):
            CooMatrix((2, 2), [0, -1], [0, 0], [1.0, 1.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(FormatError):
            CooMatrix((2, 2), [0], [0, 1], [1.0, 1.0])

    def test_wrong_arity_rejected(self):
        with pytest.raises(FormatError):
            CooTensor((2, 2, 2), [[0], [0]], [1.0])

    def test_empty_tensor(self):
        t = CooTensor((3, 3), [[], []], [])
        assert t.nnz == 0
        assert np.array_equal(t.to_dense(), np.zeros((3, 3)))


class TestRoundTrips:
    def test_dense_round_trip(self, figure1_matrix):
        dense = figure1_matrix.to_dense()
        again = CooMatrix.from_dense(dense)
        assert again == figure1_matrix

    def test_order3_dense_round_trip(self, small_tensor):
        dense = small_tensor.to_dense()
        again = CooTensor.from_dense(dense)
        assert again == small_tensor

    @given(st.integers(0, 30))
    @settings(max_examples=25, deadline=None)
    def test_random_round_trip(self, seed):
        rng = np.random.default_rng(seed)
        dense = rng.random((6, 7)) * (rng.random((6, 7)) < 0.4)
        t = CooMatrix.from_dense(dense)
        assert np.allclose(t.to_dense(), dense)


class TestProperties:
    def test_nbytes_scales_with_nnz(self, small_coo):
        per_nnz = small_coo.nbytes() / small_coo.nnz
        assert per_nnz == pytest.approx(2 * 4 + 8)

    def test_shape_and_ndim(self, small_tensor):
        assert small_tensor.ndim == 3
        assert small_tensor.shape == (20, 16, 12)

    def test_matrix_accessors(self, figure1_matrix):
        assert figure1_matrix.num_rows == 4
        assert figure1_matrix.num_cols == 4
        assert figure1_matrix.nnz == 4

    def test_repr_mentions_shape(self, figure1_matrix):
        assert "shape=(4, 4)" in repr(figure1_matrix)
        assert "nnz=4" in repr(figure1_matrix)
