"""Roofline analysis of the evaluated workloads (paper Figure 12).

Prints the attainable-performance model of the simulated machine and
where each workload lands on it, baseline vs TMU — the system-
utilization argument at the heart of the paper.

Run:  python examples/roofline_report.py
"""

from repro.config import experiment_machine
from repro.eval.experiments import fig12_roofline
from repro.eval.reporting import text_table
from repro.sim.stats import peak_bandwidth_gbps, peak_gflops

machine = experiment_machine("small")
data = fig12_roofline("small")

print(f"Machine roofs: {peak_gflops(machine):.0f} GFLOP/s compute, "
      f"{peak_bandwidth_gbps(machine):.0f} GB/s memory\n")

rows = []
for point in data["panels"]["a"]:
    workload, system = point.label.rsplit("/", 1)
    bw_pct = 100 * point.bandwidth_gbps / peak_bandwidth_gbps(machine)
    rows.append([workload, system, point.arithmetic_intensity,
                 point.gflops, point.bandwidth_gbps, f"{bw_pct:.0f}%"])
print(text_table(
    ["workload", "system", "AI (F/B)", "GFLOP/s", "GB/s", "% of peak BW"],
    rows, "Figure 12a: workload geomeans on the roofline"))

print("\nSpMSpM compute ceilings (fixed nnz/row synthetic matrices):")
for n, gf in data["nnz_per_row_ceilings"].items():
    print(f"  n = {n:2d} nnz/row  ->  {gf:8.1f} GFLOP/s ceiling")

print("\nReading the table: baseline SVE versions sit far below the "
      "bandwidth roof; TMU versions push against it — the paper's "
      "core utilization argument.")
