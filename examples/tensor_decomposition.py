"""CP-ALS tensor decomposition with TMU-accelerated MTTKRP.

The paper's flagship *application* (GenTen-style CP-ALS): each sweep
runs three MTTKRPs — the kernel the TMU accelerates — plus dense
Gram/solve updates that consume the partial results on the core, the
pattern that motivates near-core integration over discrete
accelerators.

This example (1) decomposes a synthetic low-rank tensor and reports the
fit per sweep, (2) verifies the TMU MTTKRP program against the kernel,
and (3) models the system-level speedup of one sweep.

Run:  python examples/tensor_decomposition.py
"""

import numpy as np

from repro.config import experiment_machine
from repro.formats.coo import CooTensor
from repro.kernels import cp_als, mttkrp
from repro.programs import build_mttkrp_program
from repro.programs.cpals import cpals_runs
from repro.tmu import TmuEngine

# A genuinely rank-3 tensor plus noise.
rng = np.random.default_rng(7)
RANK = 3
A = rng.random((24, RANK))
B = rng.random((20, RANK))
C = rng.random((16, RANK))
dense = np.einsum("ir,jr,kr->ijk", A, B, C)
dense *= rng.random(dense.shape) < 0.3       # sparsify
tensor = CooTensor.from_dense(dense)
print(f"Tensor {tensor.shape}, {tensor.nnz} stored entries")

# ---------------------------------------------------------- decomposition
result = cp_als(tensor, rank=RANK, iterations=12, seed=1)
print("\nCP-ALS fit per sweep:")
for sweep, fit in enumerate(result.fit_history, 1):
    print(f"  sweep {sweep:2d}: fit = {fit:.4f}")

# ------------------------------------------- MTTKRP on the TMU (exact)
factors_b, factors_c = result.factors[1], result.factors[2]
built = build_mttkrp_program(tensor, factors_b, factors_c)
TmuEngine(built.program).run(built.handlers)
tmu_mttkrp = built.result()
kernel_mttkrp = mttkrp(tensor, factors_b, factors_c)
assert np.allclose(tmu_mttkrp, kernel_mttkrp)
print("\nTMU MTTKRP program matches the software kernel.")

# --------------------------------------------------- system-level model
machine = experiment_machine("small")
baseline, tmu = cpals_runs(tensor, RANK, machine)
print(f"\nOne CP-ALS sweep on the modeled system:")
print(f"  baseline : {int(baseline.cycles):>9d} cycles")
print(f"  with TMU : {int(tmu.cycles):>9d} cycles "
      f"({baseline.cycles / tmu.cycles:.2f}x)")
print(f"  read-to-write ratio {tmu.read_to_write:.2f} "
      "(>1: the core-side dense updates bound the sweep)")
