"""System-level SpMV study: baseline vs IMP vs Single-Lane vs TMU.

Reproduces the paper's headline comparison (Figures 10 and 15) on one
input of the suite: characterize the SVE software baseline, model the
TMU-accelerated system, and print speedups, cycle breakdowns and
load-to-use latencies side by side.

Run:  python examples/spmv_acceleration.py [M1..M6]
"""

import sys

from repro.config import experiment_machine
from repro.eval.reporting import text_table
from repro.generators import load_matrix
from repro.kernels.spmv import characterize_spmv
from repro.programs import spmv_timing_model
from repro.sim import run_baseline, run_imp, run_single_lane, run_tmu

input_id = sys.argv[1] if len(sys.argv) > 1 else "M2"
machine = experiment_machine("small")
matrix = load_matrix(input_id, "small")

print(f"Input {input_id}: {matrix.num_rows} rows, {matrix.nnz} nnz, "
      f"{matrix.nnz / matrix.num_rows:.1f} nnz/row")
print(f"Machine: {machine.num_cores} cores, "
      f"{machine.memory.total_gbps:.0f} GB/s, "
      f"{machine.tmu.lanes}-lane TMU\n")

trace = characterize_spmv(matrix, machine)
model = spmv_timing_model(matrix, machine)

systems = {
    "baseline": run_baseline(trace, machine),
    "IMP": run_imp(trace, machine),
    "single-lane": run_single_lane(model, machine),
    "TMU": run_tmu(model, machine),
}

rows = []
base_cycles = systems["baseline"].cycles
for name, result in systems.items():
    commit, fe, be = result.breakdown.normalized()
    rows.append([
        name,
        int(result.cycles),
        base_cycles / result.cycles,
        f"{commit:.2f}/{fe:.2f}/{be:.2f}",
        result.breakdown.load_to_use,
    ])
print(text_table(
    ["system", "cycles", "speedup", "commit/fe/be", "load-to-use"],
    rows, f"SpMV on {input_id}"))

tmu = systems["TMU"]
print(f"\nTMU producer/consumer: engine {int(tmu.tmu_cycles)} cycles, "
      f"core {int(tmu.core_cycles)} cycles "
      f"(read-to-write ratio {tmu.read_to_write:.2f})")
print("The engine's deep request queue turns the gather-bound baseline "
      "into a bandwidth-bound stream.")
