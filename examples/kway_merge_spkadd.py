"""SpKAdd: hierarchical K-way merging on the TMU (paper Section 4.2).

Splits one matrix into K DCSR operands by cyclic row distribution (the
paper's input construction), maps each matrix to a TMU lane, merges the
compressed *row* dimension and the *column* fibers with two DisjMrg
layers, and lets the core reduce each merged point with one vector
operation (Figure 7's callback).

Run:  python examples/kway_merge_spkadd.py
"""

import numpy as np

from repro.generators import uniform_random_matrix
from repro.kernels import spkadd, split_rows_cyclic
from repro.programs import build_spkadd_program
from repro.tmu import TmuEngine

K = 8
matrix = uniform_random_matrix(96, 96, 6, seed=42)
parts = split_rows_cyclic(matrix, K)

print(f"Source matrix: {matrix.num_rows} rows, {matrix.nnz} nnz")
print(f"Split into K={K} DCSR matrices "
      f"({[p.nnz for p in parts]} nnz each)\n")

# Software reference: the K-way heap merge baseline.
reference = spkadd(parts)

# TMU: hierarchical disjunctive merge, one matrix per lane.
built = build_spkadd_program(parts)
engine = TmuEngine(built.program)
stats = engine.run(built.handlers)
result = built.result()

assert np.allclose(result.to_dense(), reference.to_dense())
print("TMU result matches the software K-way merge.")
print()
print(f"row-level merge gites    : {stats.layer_merge_steps[0]}")
print(f"column-level merge gites : {stats.layer_merge_steps[1]}")
print(f"outQ records (one per merged point + per row): "
      f"{stats.outq_records}")
print(f"output nnz               : {result.nnz}")
print()

# Each merged point marshals one K-wide vector the core reduces —
# that is the entire compute the core performs:
sample = engine.outq.records[1] if len(engine.outq.records) > 1 else None
if sample is not None and sample.callback_id == "ri":
    vals, mask, col = sample.operands
    active = [k for k in range(K) if mask & (1 << k)]
    print(f"example outQ record: column {int(col)}, "
          f"lanes {active} contributed, vec_reduce -> "
          f"{sum(vals[k] for k in active):.3f}")
