"""Reproduce the repo's performance trajectory from one store query.

Every optimization PR leaves a ``BENCH_<rev>.json`` snapshot at the
repo root.  This walkthrough ingests that committed trajectory into a
fresh experiment database (:mod:`repro.store`) and asks it the
question the files themselves cannot answer directly: *how has the
headline cells/sec metric moved across revisions?*  The same query
backs the CI ``store-smoke`` gate, so the numbers printed here are the
ones pull requests are judged against.

Run:  python examples/query_trajectory.py
"""

import tempfile
from pathlib import Path

from repro.store import (
    HEADLINE_METRIC,
    ExperimentStore,
    cells_per_sec,
    ingest_paths,
    metric_values,
    regressions,
    render_rows,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
bench_files = sorted(REPO_ROOT.glob("BENCH_*.json"))
assert bench_files, f"no BENCH_*.json trajectory at {REPO_ROOT}"

with tempfile.TemporaryDirectory(prefix="tmu-store-") as tmp:
    with ExperimentStore(Path(tmp) / "trajectory.sqlite") as db:
        ingested = ingest_paths(db, bench_files)
        print(f"ingested {len(ingested)} trajectory points "
              f"({sum(1 for r in ingested if r['created'])} new)\n")

        # the one-query answer: headline throughput per revision
        rows, columns = cells_per_sec(db, by="rev")
        print(render_rows(rows, columns, "table"))

        # the same data as the CI gate sees it
        reg_rows, reg_columns, ok = regressions(db, bound=0.2)
        print()
        print(render_rows(reg_rows, reg_columns, "table"))

        values = [v["value"] for v in metric_values(db, HEADLINE_METRIC)]

# the committed trajectory only ever speeds up: 5.97 cells/sec at the
# first benchmarked rev, 14.8 after the vectorized fast path landed
assert values == sorted(values), f"trajectory regressed: {values}"
assert values[0] < 6.5 and values[-1] > 14.0, values
assert ok, "the committed trajectory should never trip the gate"

speedup = values[-1] / values[0]
print(f"\ntrajectory: {values[0]:.2f} -> {values[-1]:.2f} cells/sec "
      f"({speedup:.1f}x across {len(values)} benchmarked revisions)")
