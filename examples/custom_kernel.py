"""Authoring a new kernel on the TMU: sparse-dense SDDMM.

The TMU's claim is *tensor-algebra completeness*: its primitives
express kernels beyond the evaluated suite.  This example maps SDDMM
(sampled dense-dense matrix multiplication,
``Z_ij = S_ij * Σ_r U_ir V_jr`` — the attention/ALS workhorse) onto the
engine from scratch:

* layer 0 traverses the sampling matrix's rows (DnsFbrT over ptrs),
  and a ``lin`` stream turns the row id into U's row base;
* layer 1 traverses the sampled coordinates (RngFbrT), loading S's
  value and turning each column id into V's row base;
* layer 2 scans the rank dimension of U and V in lockstep (IdxFbrT),
  marshaling aligned (u, v) element pairs;
* the core multiplies-accumulates per pair and scales by S at each
  fiber end.

Run:  python examples/custom_kernel.py
"""

import numpy as np

from repro.generators import uniform_random_matrix
from repro.tmu import Event, LayerMode, Program, TmuEngine
from repro.tmu.program import ScalarOperand

rng = np.random.default_rng(3)
RANK = 8
sampling = uniform_random_matrix(32, 28, 3, seed=5)   # S (CSR)
u = rng.random((32, RANK))                            # U
v = rng.random((28, RANK))                            # V

prog = Program("sddmm", lanes=2, max_layers=3)
s_ptrs = prog.place_array(sampling.ptrs, 4, "S->ptrs")
s_idxs = prog.place_array(sampling.idxs, 4, "S->idxs")
s_vals = prog.place_array(sampling.vals, 8, "S->vals")
u_flat = prog.place_array(np.ascontiguousarray(u.reshape(-1)), 8, "U")
v_flat = prog.place_array(np.ascontiguousarray(v.reshape(-1)), 8, "V")

# Layer 0: row traversal; lin turns row i into U's row base i*RANK.
l0 = prog.add_layer(LayerMode.BCAST)
row = l0.dns_fbrt(beg=0, end=sampling.num_rows)
row_beg = row.add_mem_stream(s_ptrs, name="row_beg")
row_end = row.add_mem_stream(s_ptrs, offset=1, name="row_end")
u_base = row.add_lin_stream(RANK, 0, name="u_row_base")
l0.set_volume_hint(sampling.num_rows)

# Layer 1: sampled coordinates; lin turns column j into V's row base.
l1 = prog.add_layer(LayerMode.BCAST)
nz = l1.rng_fbrt(beg=row_beg, end=row_end)
col = nz.add_mem_stream(s_idxs, name="j")
s_val = nz.add_mem_stream(s_vals, name="s_val")
v_base = nz.add_lin_stream(RANK, 0, parent=col, name="v_row_base")
l1.add_callback(Event.GITE, "pair_begin", [ScalarOperand(s_val)])
l1.set_volume_hint(sampling.nnz)

# Layer 2: lockstep rank scan of U's row (lane 0) and V's row (lane 1).
l2 = prog.add_layer(LayerMode.LOCKSTEP)
u_tu = l2.idx_fbrt(beg=u_base, size=RANK)
u_el = u_tu.add_mem_stream(u_flat, name="u")
v_tu = l2.idx_fbrt(beg=v_base, size=RANK)
v_el = v_tu.add_mem_stream(v_flat, name="v")
l2.add_callback(Event.GITE, "dot_step", [l2.vec_operand([u_el, v_el])])
l2.add_callback(Event.GEND, "pair_end", [])
l2.set_volume_hint(2.0 * sampling.nnz * RANK)

# Core callbacks: a dot product per sampled coordinate, scaled by S.
out_vals = []
state = {"s": 0.0, "acc": 0.0}


def pair_begin(record):
    state["s"] = record.operands[0]
    state["acc"] = 0.0


def dot_step(record):
    u_val, v_val = record.operands[0]
    state["acc"] += u_val * v_val


def pair_end(record):
    out_vals.append(state["s"] * state["acc"])


stats = TmuEngine(prog).run({
    "pair_begin": pair_begin, "dot_step": dot_step,
    "pair_end": pair_end,
})

# Verify against numpy: Z has S's sparsity with sampled dot products.
expected = []
for i in range(sampling.num_rows):
    beg, end = sampling.row_slice(i)
    for p in range(beg, end):
        j = int(sampling.idxs[p])
        expected.append(sampling.vals[p] * float(u[i] @ v[j]))

assert np.allclose(out_vals, expected)
print(f"SDDMM on the TMU: {len(out_vals)} sampled dot products, "
      "all match numpy.")
print(f"TU iterations per layer: {stats.layer_iterations} "
      f"(= rows, nnz, 2 x nnz x rank)")
print("A kernel the paper never evaluated, mapped with the same six "
      "primitives — that is what format/algebra completeness buys.")
