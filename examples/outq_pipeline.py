"""Visualizing the decoupled outQ pipeline (paper Section 5.3).

The TMU writes outQ chunks while the core processes earlier ones
(double buffering).  This example simulates the chunk timeline for the
three regimes Figure 13 identifies — engine-bound, balanced, and
core-bound — and shows what chunk-time *variability* (heavy rows) does
to the overlap, an effect the closed-form model cannot see.

Run:  python examples/outq_pipeline.py
"""

from repro.eval.reporting import text_table
from repro.sim.pipeline import chunk_times_from_totals, \
    simulate_outq_pipeline

CHUNKS = 128

regimes = [
    ("engine-bound (SpMV-like, r2w 0.5)", 10_000.0, 5_000.0),
    ("balanced (SpKAdd-like, r2w 1.0)", 10_000.0, 10_000.0),
    ("core-bound (SpMSpM-like, r2w 1.7)", 10_000.0, 17_000.0),
]

rows = []
for label, produce_total, consume_total in regimes:
    for cv in (0.0, 1.0):
        p, c = chunk_times_from_totals(produce_total, consume_total,
                                       CHUNKS, cv=cv, seed=5)
        r = simulate_outq_pipeline(p, c, buffers=2)
        rows.append([
            label,
            f"{cv:.1f}",
            int(r.total_cycles),
            f"{r.producer_utilization:.0%}",
            f"{r.consumer_utilization:.0%}",
            int(r.producer_stalled),
            int(r.consumer_stalled),
            f"{r.read_to_write:.2f}",
        ])

print(text_table(
    ["regime", "chunk cv", "total", "engine util", "core util",
     "engine stall", "core stall", "r2w"],
    rows,
    "outQ double-buffered pipeline, 128 chunks"))

print("""
Reading the table:
 * engine-bound: the core idles waiting for chunks (core util ~50%);
 * balanced: both sides ~fully utilized — the double buffer earns its
   area;
 * core-bound: the engine stalls on full buffers, exactly the >1
   read-to-write regime of Figure 13;
 * cv=1.0 rows: irregular chunk times break the overlap and stretch
   every regime — why queue sizing (Section 5.5) allocates storage to
   the layers that load the most.""")
