"""Compiling tensor expressions straight to TMU programs.

The paper's Section 4.4 sketches DSL-compiler integration as future
work; `repro.compiler` implements it for a practical subset.  Write a
TACO-style assignment, hand over concrete operands, and get back a
runnable TMU program with generated callbacks.

Run:  python examples/einsum_compiler.py
"""

import numpy as np

from repro.compiler import compile_expression, parse_expression
from repro.generators import uniform_random_matrix
from repro.tmu import TmuEngine

rng = np.random.default_rng(11)
A = uniform_random_matrix(32, 32, 4, seed=61)
B = uniform_random_matrix(32, 32, 4, seed=62)
v = rng.random(32)
D = rng.random((32, 6))

cases = [
    ("Z(i) = A(i,j) * B(j)",    {"A": A, "B": v},
     lambda: A.to_dense() @ v),
    ("Z(i,k) = A(i,j) * B(j,k)", {"A": A, "B": D},
     lambda: A.to_dense() @ D),
    ("Z(i,k) = A(i,j) * B(j,k)", {"A": A, "B": B},
     lambda: A.to_dense() @ B.to_dense()),
    ("Z(i,j) = A(i,j) + B(i,j)", {"A": A, "B": B},
     lambda: A.to_dense() + B.to_dense()),
    ("Z(i,j) = A(i,j) * B(i,j)", {"A": A, "B": B},
     lambda: A.to_dense() * B.to_dense()),
]

for text, operands, reference in cases:
    expr = parse_expression(text)
    built = compile_expression(expr, operands)
    TmuEngine(built.program).run(built.handlers)
    out = built.result()
    dense = out.to_dense() if hasattr(out, "to_dense") else out
    assert np.allclose(dense, reference()), text
    classes = ", ".join(f"{i}:{c}" for i, c in
                        sorted(expr.index_classes().items()))
    print(f"{text:32s} -> {built.description:46s} [{classes}]  OK")

print("\nFive expressions, five generated TMU programs, zero hand-"
      "written mappings.")
