"""Quickstart: program the TMU for SpMV and run it functionally.

This walks the paper's running example end to end (Figures 4, 8, 9):
build a CSR matrix, write the two-layer TMU program — a dense traversal
of the row pointers broadcast into a lockstep pair of compressed column
traversals — register the ``ri``/``re`` callbacks, execute on the
functional engine, and check the result against numpy.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.formats.csr import CsrMatrix
from repro.tmu import Event, LayerMode, Program, TmuEngine

# ---------------------------------------------------------------- inputs
# The sparse matrix of the paper's Figure 1 (rows: a / b / empty / c d).
matrix = CsrMatrix(
    shape=(4, 4),
    ptrs=[0, 1, 2, 2, 4],
    idxs=[0, 2, 1, 3],
    vals=[1.0, 2.0, 3.0, 4.0],
)
vector = np.array([10.0, 20.0, 30.0, 40.0])

# ------------------------------------------------- the TMU program (Fig 8)
LANES = 2
prog = Program("spmv_quickstart", lanes=LANES)
ptrs = prog.place_array(matrix.ptrs, 4, "a->ptrs")
idxs = prog.place_array(matrix.idxs, 4, "a->idxs")
vals = prog.place_array(matrix.vals, 8, "a->vals")
bvec = prog.place_array(vector, 8, "b")

# Layer 0: dense traversal of the row pointers, broadcast rightward.
layer0 = prog.add_layer(LayerMode.BCAST)
row = layer0.dns_fbrt(beg=0, end=matrix.num_rows)
row_ptbs = row.add_mem_stream(ptrs, name="row_ptbs")
row_ptes = row.add_mem_stream(ptrs, offset=1, name="row_ptes")
layer0.set_volume_hint(matrix.num_rows)

# Layer 1: two lanes co-iterate each row in lockstep, each loading the
# column index, the non-zero value, and the gathered vector element.
layer1 = prog.add_layer(LayerMode.LOCKSTEP)
nnz_streams, vec_streams = [], []
for lane in range(LANES):
    col = layer1.rng_fbrt(beg=row_ptbs, end=row_ptes, offset=lane,
                          stride=LANES)
    col_idxs = col.add_mem_stream(idxs, name=f"col_idxs{lane}")
    nnz_streams.append(col.add_mem_stream(vals, name=f"nnz_vals{lane}"))
    vec_streams.append(col.add_mem_stream(bvec, parent=col_idxs,
                                          name=f"vec_vals{lane}"))
nnz_vals = layer1.vec_operand(nnz_streams)
vec_vals = layer1.vec_operand(vec_streams)
layer1.add_callback(Event.GITE, "ri", [nnz_vals, vec_vals,
                                       layer1.mask_operand()])
layer1.add_callback(Event.GEND, "re", [])
layer1.set_volume_hint(matrix.nnz)

# ----------------------------------------------- core callbacks (Fig 6)
x = np.zeros(matrix.num_rows)
state = {"sum": 0.0, "row": 0}


def ri_callback(record):
    """Inner-loop body: multiply and accumulate the marshaled pair."""
    nnz, vec, mask = record.operands
    for lane in range(len(nnz)):
        if mask & (1 << lane):
            state["sum"] += nnz[lane] * vec[lane]


def re_callback(record):
    """Inner-loop tail: store the row result."""
    x[state["row"]] = state["sum"]
    state["sum"] = 0.0
    state["row"] += 1


# --------------------------------------------------------------- run it
engine = TmuEngine(prog)
stats = engine.run({"ri": ri_callback, "re": re_callback})

expected = matrix.to_dense() @ vector
print("TMU result:   ", x)
print("numpy result: ", expected)
assert np.allclose(x, expected), "mismatch!"

print()
print(f"TU iterations per layer : {stats.layer_iterations}")
print(f"outQ records / bytes    : {stats.outq_records} / "
      f"{stats.outq_bytes}")
print(f"memory touches / lines  : {stats.memory_touches} / "
      f"{stats.memory_lines}")
print(f"queue entries per layer : "
      f"{stats.queue_sizing.entries_per_layer} "
      f"({stats.queue_sizing.utilization:.0%} of lane storage)")
print()
print("OK — the TMU marshaled every operand the core needed.")
