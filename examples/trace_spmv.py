"""Trace a real SpMV run through the TMU engine and analyze it.

Records an event timeline while the functional engine executes the
Table 4 SpMV mapping on a small matrix, then shows both consumers of
the ``repro.trace/1`` schema: the stall-attribution report (printed
below) and a Perfetto-loadable JSON timeline — drag the exported file
onto https://ui.perfetto.dev to see one swim lane per TU lane, TG
layer, arbiter and outQ, with merge stalls marked on the layer tracks.

Run:  python examples/trace_spmv.py [M1..M6]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import obs
from repro.generators import load_matrix
from repro.programs import build_spmv_program
from repro.tmu.engine import TmuEngine

input_id = sys.argv[1] if len(sys.argv) > 1 else "M2"
matrix = load_matrix(input_id, "small")
x = np.ones(matrix.num_cols)

print(f"Input {input_id}: {matrix.num_rows} rows, {matrix.nnz} nnz\n")

built = build_spmv_program(matrix, x)
with obs.trace_capture() as tracer:
    stats = TmuEngine(built.program).run(built.handlers)
    trace = obs.trace_snapshot(meta={"experiments": f"spmv/{input_id}"})

print(f"engine: {stats.total_iterations} iterations, "
      f"{stats.outq_records} outQ records, "
      f"{stats.memory_lines} memory lines")
print(f"trace:  {len(trace['events'])} events on {tracer.now} "
      f"virtual ticks ({trace['dropped']} dropped)\n")

# consumer 1: the per-component stall/cycle decomposition
print(obs.stall_report(trace))

# consumer 2: a Perfetto-loadable timeline (kept out of the worktree)
out_dir = Path(tempfile.mkdtemp(prefix="tmu-trace-"))
out = obs.write_perfetto(trace, out_dir / f"spmv_{input_id}.perfetto.json")
print(f"\nperfetto timeline: {out} — open it at https://ui.perfetto.dev")
