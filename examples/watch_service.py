"""Watch a running simulation service through its observability plane.

The service exposes three operational endpoints next to the JSON API:

* ``GET /healthz`` — liveness (does the process answer?),
* ``GET /readyz``  — readiness (scheduler supervisor alive, queue
  accepting, journal writable; 503 the moment any check fails),
* ``GET /metrics`` — the whole telemetry registry as Prometheus text
  exposition, with scrape-time gauges (queue depth, per-state job
  counts) refreshed on every scrape.

This example boots a service on an ephemeral port, submits a sweep,
and plays the role of a monitoring agent: it polls ``/readyz`` and
``/metrics`` with plain ``urllib`` while the job runs, prints the
serve-side series it finds, and finally demonstrates the readiness
flip when the scheduler is stopped.

Run:  PYTHONPATH=src python examples/watch_service.py
"""

import json
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.serve import ServeClient, SimService, make_server, make_sweep

state = Path(tempfile.mkdtemp(prefix="repro-watch-example-"))


def get(url):
    """(status, body) without raising on 4xx/5xx — probes must read
    the body of an unhealthy answer, not crash on it."""
    try:
        with urllib.request.urlopen(url, timeout=30) as resp:
            return resp.status, resp.read().decode("utf-8")
    except urllib.error.HTTPError as err:
        return err.code, err.read().decode("utf-8")


# ------------------------------------------------------ boot the service
service = SimService(state_dir=state / "state",
                     cache_dir=state / "cache", telemetry=True)
service.start()
server = make_server(service, port=0, quiet=True)
threading.Thread(target=server.serve_forever, daemon=True).start()
base = f"http://127.0.0.1:{server.server_address[1]}"

status, body = get(base + "/healthz")
assert status == 200, body
status, body = get(base + "/readyz")
assert status == 200 and json.loads(body)["ready"], body
print(f"service on {base}: live and ready")

# ----------------------------------------------- submit work, then watch
job = ServeClient(base).submit(
    make_sweep(workloads=["spmv"], inputs=["M1", "M2"]),
    client="watcher")
print(f"submitted job {job['id'][:12]} ({job['total']} cells); "
      "scraping while it runs")

while True:
    _, metrics = get(base + "/metrics")
    depth = queued = None
    for line in metrics.splitlines():
        if line.startswith("repro_serve_queue_depth{"):
            depth = line.rsplit(" ", 1)[1]
        elif line.startswith("repro_serve_jobs{") and '"running"' in line:
            queued = line.rsplit(" ", 1)[1]
    print(f"  scrape: queue_depth={depth} running_jobs={queued}")
    state_now = json.loads(get(f"{base}/v1/jobs/{job['id']}")[1])["state"]
    if state_now not in ("pending", "running"):
        break
    time.sleep(0.5)
print(f"job finished: {state_now}")

# ------------------------------- what a Prometheus scrape actually sees
_, metrics = get(base + "/metrics")
serve_series = sorted({line.split("{", 1)[0]
                       for line in metrics.splitlines()
                       if line.startswith("repro_serve_")})
print(f"{len(serve_series)} serve-side series families:")
for name in serve_series:
    print(f"  {name}")
assert "repro_serve_http_latency_ms_bucket" in serve_series
assert "repro_serve_client_cells" in serve_series

# ------------------------------------------------- the readiness flip
# Liveness and readiness answer different questions: stop the
# scheduler supervisor and the process still answers /healthz, but
# /readyz turns 503 so an orchestrator drains traffic instead of
# killing the pod.
service.scheduler.stop()
status, body = get(base + "/readyz")
checks = json.loads(body)["checks"]
assert status == 503 and checks["scheduler"] is False, body
assert get(base + "/healthz")[0] == 200
print(f"scheduler stopped -> /readyz 503 {checks}, /healthz still 200")

server.shutdown()
service.stop()
