"""Drive the simulation job service end to end, in-process.

This example boots a :class:`~repro.serve.SimService` on an ephemeral
port, submits a declarative sweep through the stdlib HTTP client,
streams progress events while it runs, fetches the content-addressed
result records, and then demonstrates the service's core guarantee:
resubmitting the same sweep — however it is phrased — costs nothing,
because the job id is the sha256 of the expanded cell hashes.

Against an already-running server (``python -m repro serve``), skip
the booting part and just point :class:`ServeClient` at its URL; the
client half of this script is unchanged.

Run:  PYTHONPATH=src python examples/submit_sweep.py
"""

import tempfile
import threading
from pathlib import Path

from repro.serve import ServeClient, SimService, make_server, make_sweep

state = Path(tempfile.mkdtemp(prefix="repro-serve-example-"))

# ------------------------------------------------------ boot the service
# state_dir holds the resumable job journal; cache_dir the
# content-addressed result records shared with every other repro run.
service = SimService(state_dir=state / "state",
                     cache_dir=state / "cache", telemetry=True)
recovered = service.start()
server = make_server(service, port=0, quiet=True)
threading.Thread(target=server.serve_forever, daemon=True).start()
url = f"http://127.0.0.1:{server.server_address[1]}"
print(f"service on {url} ({recovered} jobs recovered from journal)")

# ------------------------------------------------------- submit a sweep
# A sweep is declarative: workloads x inputs (x machine configs); the
# server expands it into content-hashed simulation cells.
client = ServeClient(url)
sweep = make_sweep(workloads=["spmv", "spkadd"], inputs=["M1", "M2"])
job = client.submit(sweep, client="example", priority=1)
print(f"submitted job {job['id'][:12]} "
      f"({job['total']} cells, created={job['_created']})")

# ------------------------------------- stream progress until completion
for event in client.stream_events(job["id"]):
    print(f"  [{event['event']:>9}] {event.get('message', '')}")

# ------------------------------------------------------- fetch results
job = client.job(job["id"])
print(f"job {job['state']}: {job['simulated']} simulated, "
      f"{job['cached']} cached, {job['failed']} failed")
result = client.result(job["id"])
some_hash, record = next(iter(result["records"].items()))
print(f"fetched {len(result['records'])} records "
      f"({result['missing']} missing); e.g. cell {some_hash[:12]} -> "
      f"{sorted(record)[:5]} ...")

# ------------------------------------------- idempotent resubmission
# Same cells, different phrasing: the job id is content-addressed, so
# this deduplicates onto the finished job and costs zero simulations.
again = client.submit(
    make_sweep(workloads=["spkadd", "spmv"], inputs=["M2", "M1"]),
    client="someone-else")
assert again["id"] == job["id"] and not again["_created"]
print(f"resubmission deduplicated onto {again['id'][:12]} "
      f"(state={again['state']}, 0 new simulations)")

stats = client.stats()
print(f"server stats: queue_depth={stats['queue_depth']}, "
      f"jobs={stats['jobs']}")

server.shutdown()
service.stop()
