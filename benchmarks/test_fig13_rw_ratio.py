"""Regenerate Figure 13: the read-to-write ratio."""

from repro.eval import experiments as ex

from .conftest import save_artifact


def test_fig13_read_to_write(benchmark, results_dir, scale):
    data = benchmark.pedantic(
        ex.fig13_read_to_write, args=(scale,), rounds=1, iterations=1)
    save_artifact(results_dir, "fig13_read_to_write.txt",
                  ex.render_fig13(data))

    # Paper shape: the core outpaces the engine (<1) on TC (merging
    # offloaded) and on SpMV/MTTKRP (regular SIMD compute)...
    assert data["tc"] < 1.0
    assert data["spmv"] < 1.0
    assert data["pr"] < 1.0

    # ...SpKAdd sits close to balanced...
    assert 0.4 < data["spkadd"] < 2.5

    # ...and SpMSpM / CP-ALS / (here also SpTC) are core-bound (>1),
    # indicating the bottleneck is on the core's side.
    assert data["spmspm"] > 1.0
    assert data["cpals"] > 1.0

    # TC is the most engine-lopsided workload of all (paper: lowest
    # ratio in the figure).
    assert data["tc"] == min(data.values())
