"""Regenerate Table 5 (architecture), Table 6 (inputs) and the RTL
area results."""

import pytest

from repro.eval import experiments as ex

from .conftest import save_artifact


def test_table5_parameters(benchmark, results_dir, scale):
    rows = benchmark.pedantic(
        ex.table5_parameters, args=(scale,), rounds=1, iterations=1)
    save_artifact(results_dir, "table5_parameters.txt",
                  ex.render_table5(rows))
    text = ex.render_table5(rows)
    # Table 5's headline entries
    assert "8 neoverse-n1-like at 2.4GHz" in text
    assert "512 bits" in text
    assert "224 entries" in text
    assert "8 lanes" in text and "128 outstanding requests" in text
    assert "4 HBM2e channels" in text


def test_table6_inputs(benchmark, results_dir, scale):
    rows = benchmark.pedantic(
        ex.table6_inputs, args=(scale,), rounds=1, iterations=1)
    save_artifact(results_dir, "table6_inputs.txt",
                  ex.render_table6(rows))
    by_id = {r["id"]: r for r in rows}
    assert set(by_id) == {"M1", "M2", "M3", "M4", "M5", "M6",
                          "T1", "T2", "T3", "T4"}
    # Generated stand-ins track the paper's density ordering:
    # M5 (55/row) > M1 (35/row) > ... > M4 (2/row).
    density = {i: by_id[i]["nnz_per_row"] for i in
               ("M1", "M2", "M3", "M4", "M5", "M6")}
    assert density["M5"] > density["M1"] > density["M2"]
    assert density["M4"] == min(density.values())


def test_area_model(benchmark, results_dir):
    data = benchmark.pedantic(ex.area_results, rounds=1, iterations=1)
    save_artifact(results_dir, "area.txt", ex.render_area(data))
    # Published numbers reproduced exactly by the calibrated model.
    assert data["total_mm2"] == pytest.approx(0.0704, rel=1e-6)
    assert data["lane_mm2"] == pytest.approx(0.0080, rel=1e-6)
    assert data["core_fraction"] == pytest.approx(0.0152, rel=1e-6)
