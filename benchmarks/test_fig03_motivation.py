"""Regenerate Figure 3: the motivation stall-breakdown study."""

from repro.eval import experiments as ex

from .conftest import save_artifact


def test_fig03_motivation(benchmark, results_dir, scale):
    rows = benchmark.pedantic(
        ex.fig03_motivation, args=(scale,), rounds=1, iterations=1)
    save_artifact(results_dir, "fig03_motivation.txt",
                  ex.render_fig03(rows))

    def stall_fraction(host, workload, kind):
        vals = [r[kind] for r in rows
                if r["host"] == host and r["workload"] == workload]
        return sum(vals) / len(vals)

    # Paper shape 1: sparse workloads have low CPU utilization — most
    # cycles are stalls on both hosts.
    for host in ("a64fx", "graviton3"):
        for workload in ("spmv", "spmspm", "spadd"):
            commit = stall_fraction(host, workload, "committing")
            assert commit < 0.55, (host, workload, commit)

    # Paper shape 2: SpMV is backend-stall dominated.
    assert stall_fraction("a64fx", "spmv", "backend") > 0.5
    assert stall_fraction("graviton3", "spmv", "backend") > 0.5

    # Paper shape 4: SpAdd suffers high frontend stalls, worst on the
    # narrow-OoO A64FX-like host.
    fe_a64 = stall_fraction("a64fx", "spadd", "frontend")
    fe_g3 = stall_fraction("graviton3", "spadd", "frontend")
    assert fe_a64 > 0.25
    assert fe_a64 > fe_g3
    # ... and far above SpMV's frontend share on the same host.
    assert fe_a64 > 2 * stall_fraction("a64fx", "spmv", "frontend")
