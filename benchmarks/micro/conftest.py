"""Micro-benchmark harness: per-component speedup gates.

Unlike the figure-level benchmarks one directory up, these tests time
*individual hot paths* (cache lookup, arbiter touch recording, operand
marshaling) and gate the fast-path/reference-path **ratio** against
``benchmarks/baselines/micro.json``.  Ratios compare two in-process
code paths under identical load, so they are machine-independent in a
way absolute timings are not — a noisy container slows both sides.

Run with::

    pytest benchmarks/micro/

Wall-clock ``pytest-benchmark`` timings ride along when the plugin is
installed (they are informational, never gated).  Set
``REPRO_BENCH_SNAPSHOT=0`` to keep a micro-only run from appending a
``BENCH_<rev>.json`` perf snapshot (the parent conftest's session
telemetry also covers this directory).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

BASELINES = Path(__file__).resolve().parent.parent / "baselines" / \
    "micro.json"


@pytest.fixture(scope="session")
def micro_baselines() -> dict:
    return json.loads(BASELINES.read_text())


@pytest.fixture(scope="session")
def best_of():
    """min-of-reps timer: the minimum over repetitions estimates the
    noise-free cost, which keeps ratio gates stable on shared runners."""

    def _best(f, reps: int = 3) -> float:
        out = []
        for _ in range(reps):
            t0 = time.perf_counter()
            f()
            out.append(time.perf_counter() - t0)
        return min(out)

    return _best
