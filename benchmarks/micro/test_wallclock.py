"""Informational absolute timings via pytest-benchmark.

These are never gated — the ratio tests next door carry the
regression-detection duty.  The whole module is skipped when the
plugin is not installed (CI's tier-1 job, for instance).
"""

from __future__ import annotations

import numpy as np
import pytest

pytest.importorskip("pytest_benchmark")

from repro.config import CacheConfig  # noqa: E402
from repro.generators import uniform_random_matrix  # noqa: E402
from repro.kernels import split_rows_cyclic  # noqa: E402
from repro.programs import build_spkadd_program  # noqa: E402
from repro.sim.cache import Cache  # noqa: E402
from repro.sim.fastcache import FastCache  # noqa: E402
from repro.tmu import TmuEngine  # noqa: E402

CFG = CacheConfig(64 * 8 * 64, 8, 1, 4)
LINES = np.arange(400_000)


def test_bench_lookup_fast(benchmark):
    benchmark.pedantic(lambda: FastCache(CFG).lookup_lines(LINES),
                       rounds=3, iterations=1)


def test_bench_lookup_reference(benchmark):
    benchmark.pedantic(lambda: Cache(CFG).lookup_lines(LINES),
                       rounds=3, iterations=1)


def test_bench_engine_run_spkadd(benchmark):
    matrix = uniform_random_matrix(60, 60, 6, seed=3)
    parts = split_rows_cyclic(matrix, 4)

    def run():
        built = build_spkadd_program(parts)
        TmuEngine(built.program).run(built.handlers)

    benchmark.pedantic(run, rounds=3, iterations=1)
