"""TMU hot-loop microbenches: batched vs per-touch arbiter recording,
precompiled vs ladder operand marshaling.

Both reference paths stay live in the tree (``MemoryArbiter
.record_touch`` drives tracing; ``TmuEngine._resolve_operands`` covers
direct fires outside ``run()``), so each gate compares two real code
paths under identical load.
"""

from __future__ import annotations

import numpy as np

from repro.generators import uniform_random_matrix
from repro.programs import build_spmv_program
from repro.tmu import TmuEngine
from repro.tmu.arbiter import MemoryArbiter
from repro.tmu.program import Event
from repro.tmu.streams import MemStream, MemoryArray
from repro.tmu.tu import PrimitiveKind, TraversalUnit


class TestArbiterTouchBatching:
    def test_record_touches_vs_per_touch(self, best_of, micro_baselines):
        """One fiber's worth of sequential element touches, recorded in
        one batch vs one call per touch."""
        tu = TraversalUnit(0, 0, PrimitiveKind.DENSE, beg=0, end=10)
        array = MemoryArray(np.zeros(8192), 8, 0, "a")
        stream = MemStream(array, tu.ite, 0, "s")
        addresses = list(range(0, 8 * 4096, 8))

        def per_touch():
            arb = MemoryArbiter()
            for a in addresses:
                arb.record_touch(tu, stream, a)

        def batched():
            arb = MemoryArbiter()
            arb.record_touches(tu, stream, addresses)

        ratio = best_of(per_touch, 7) / best_of(batched, 7)
        floor = micro_baselines["arbiter_touch_batch_min_ratio"]
        assert ratio >= floor, (
            f"arbiter touch batching speedup regressed: {ratio:.2f}x < "
            f"{floor}x")

    def test_batch_equals_per_touch(self):
        """Same grant stream either way (order and dedup included)."""
        tu = TraversalUnit(0, 0, PrimitiveKind.DENSE, beg=0, end=10)
        array = MemoryArray(np.zeros(8192), 8, 0, "a")
        stream = MemStream(array, tu.ite, 0, "s")
        rng = np.random.default_rng(5)
        addresses = [int(a) for a in rng.integers(0, 4096, 500) * 8]
        a1, a2 = MemoryArbiter(), MemoryArbiter()
        for a in addresses:
            a1.record_touch(tu, stream, a)
        a2.record_touches(tu, stream, addresses)
        l1, l2 = a1.priority_order()[0], a2.priority_order()[0]
        assert l1.touches == l2.touches
        assert l1.lines == l2.lines
        assert l1.last_line == l2.last_line


class TestOperandMarshal:
    def test_compiled_resolver_vs_ladder(self, best_of, micro_baselines):
        """Per-gite marshal cost: the precompiled (callback, resolver)
        pairs vs the per-step ``callbacks_for`` + isinstance ladder the
        engine used to run."""
        matrix = uniform_random_matrix(30, 30, 4, seed=13)
        vector = np.random.default_rng(3).random(matrix.num_cols)
        built = build_spmv_program(matrix, vector, lanes=2)
        engine = TmuEngine(built.program)

        captured = {}
        orig = engine._fire

        def spy(cb, layer_idx, step, envs, mask, resolver=None):
            if step is not None and cb.operands and not captured:
                captured.update(layer=layer_idx, step=step, envs=envs,
                                mask=mask)
            orig(cb, layer_idx, step, envs, mask, resolver)

        engine._fire = spy
        engine.run(built.handlers)
        layer = captured["layer"]
        step, envs, mask = (captured[k] for k in ("step", "envs", "mask"))
        first = (mask & -mask).bit_length() - 1
        pairs = engine._layer_callbacks[layer][1]  # GITE
        program_layer = engine.program.layers[layer]
        reps = 30_000

        def fast():
            for _ in range(reps):
                for _cb, res in pairs:
                    res(step, envs, first)

        def ladder():
            for _ in range(reps):
                for cb in program_layer.callbacks_for(Event.GITE):
                    engine._resolve_operands(cb, layer, step, envs, mask)

        ratio = best_of(ladder, 5) / best_of(fast, 5)
        floor = micro_baselines["operand_marshal_min_ratio"]
        assert ratio >= floor, (
            f"operand marshal speedup regressed: {ratio:.2f}x < {floor}x")

    def test_resolvers_match_ladder(self):
        """Every compiled resolver returns exactly what the reference
        ladder resolves, for every callback the program fires."""
        matrix = uniform_random_matrix(30, 30, 4, seed=13)
        vector = np.random.default_rng(3).random(matrix.num_cols)
        built = build_spmv_program(matrix, vector, lanes=2)
        engine = TmuEngine(built.program)
        orig = engine._fire
        checked = [0]

        def check(cb, layer_idx, step, envs, mask, resolver=None):
            compiled = engine._resolvers[(layer_idx, id(cb))](
                step, envs, (mask & -mask).bit_length() - 1)
            ladder = engine._resolve_operands(cb, layer_idx, step, envs,
                                              mask)
            assert compiled == ladder
            checked[0] += 1
            orig(cb, layer_idx, step, envs, mask, resolver)

        engine._fire = check
        engine.run(built.handlers)
        assert checked[0] > 0
