"""Cache-lookup microbenches: FastCache vs the reference Cache.

The gated streams mirror what the simulator actually feeds
``lookup_lines``: long traversal streams (sequential/strided cold
misses — the TMU's idx/vals arrays) and irregular gathers with reuse
(the dependent B-row/x-vector accesses).  Equivalence is pinned by
``tests/test_fastcache_equiv.py``; here only the speed ratio is gated.
"""

from __future__ import annotations

import numpy as np

from repro.config import CacheConfig
from repro.sim.cache import Cache
from repro.sim.fastcache import FastCache

N = 400_000


def _run(cls, cfg: CacheConfig, lines: np.ndarray) -> None:
    cache = cls(cfg)
    cache.lookup_lines(lines)


def _ratio(best_of, cfg: CacheConfig, lines: np.ndarray) -> float:
    ref = best_of(lambda: _run(Cache, cfg, lines))
    fast = best_of(lambda: _run(FastCache, cfg, lines))
    return ref / fast


class TestLookupLinesSpeedup:
    def test_streaming_traversal(self, best_of, micro_baselines):
        """Cold sequential + strided lines — the TMU's bread-and-butter
        stream shape."""
        cfg = CacheConfig(64 * 8 * 64, 8, 1, 4)
        lines = np.concatenate([np.arange(N // 2),
                                np.arange(N // 2) * 3 + 10_000_000])
        ratio = _ratio(best_of, cfg, lines)
        floor = micro_baselines["cache_lookup_streaming_min_ratio"]
        assert ratio >= floor, (
            f"streaming lookup_lines speedup regressed: {ratio:.2f}x < "
            f"{floor}x")

    def test_irregular_gather(self, best_of, micro_baselines):
        """Random row gathers — random block starts over a footprint far
        beyond capacity, consecutive lines within each block (the
        dependent B-row accesses of spmspm)."""
        cfg = CacheConfig(64 * 8 * 64, 8, 1, 4)
        rng = np.random.default_rng(11)
        starts = rng.integers(0, 50_000, N // 8) * 8
        lines = (starts[:, None] + np.arange(8)[None, :]).ravel()
        ratio = _ratio(best_of, cfg, lines)
        floor = micro_baselines["cache_lookup_gather_min_ratio"]
        assert ratio >= floor, (
            f"gather lookup_lines speedup regressed: {ratio:.2f}x < "
            f"{floor}x")
