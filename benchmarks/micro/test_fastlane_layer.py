"""Layer-step microbench: SoA lane engine vs the scalar reference loop.

Times one long-fiber SpMV program end to end through ``TmuEngine.run``
under both engines and gates the ratio.  Long fibers are where the
structure-of-arrays rewrite pays: the per-element interpreter dispatch
of the scalar loop is replaced by one vectorized pass per activation.

A fresh program and engine are built for every repetition — traversal
units accumulate iteration counters across runs, so reusing a program
would replay warm state and corrupt the timing.
"""

from __future__ import annotations

import numpy as np

from repro.generators import uniform_random_matrix
from repro.programs import build_spmv_program
from repro.tmu import TmuEngine


def _built():
    matrix = uniform_random_matrix(64, 4096, 1024, seed=3)
    vector = np.random.default_rng(0).random(matrix.num_cols)
    return build_spmv_program(matrix, vector, lanes=4)


def _run(fast: bool) -> float:
    built = _built()
    engine = TmuEngine(built.program, fast=fast)
    engine.run(built.handlers)
    return built.result()


class TestFastlaneLayerStep:
    def test_soa_vs_scalar_layer_loop(self, best_of, micro_baselines):
        """46 dense-ish fibers of ~1024 elements each, four lanes."""
        ratio = best_of(lambda: _run(False), 3) / best_of(
            lambda: _run(True), 3)
        floor = micro_baselines["fastlane_layer_step_min_ratio"]
        assert ratio >= floor, (
            f"SoA lane-engine speedup regressed: {ratio:.2f}x < {floor}x")

    def test_results_match(self):
        """Both engines must compute the identical SpMV output."""
        np.testing.assert_allclose(_run(True), _run(False))
