"""Stack-distance microbench: offline hit_mask vs stateful FastCache.

Gates the whole-stream stack-distance pass (the fast model's cold-walk
engine since the walk-cache PR) against driving the same stream
through ``FastCache.lookup_lines`` on an LLC-sized geometry
(Graviton3-class: 32768 sets x 16 ways) with long streams.  The mix
mirrors marshaled-session traffic — sequential operand/output scans,
strided traversals, irregular reuse, and a uniform scatter — where the
offline model's monotonic early-exit and block distinct-count screens
pay off.  Pure cache-thrash loops (every window exactly at capacity)
are the one shape where the stateful model's adaptive scan still wins
(~0.9x) and are deliberately not part of the gate; real kernel streams
are never pure thrash.  Equivalence is pinned by
``tests/test_stackdist_equiv.py``; here only the speed ratio is gated.
"""

from __future__ import annotations

import numpy as np

from repro.config import CacheConfig
from repro.sim import stackdist
from repro.sim.fastcache import FastCache

SETS, WAYS = 32768, 16
N = 2_000_000


def _streams() -> list[np.ndarray]:
    rng = np.random.default_rng(29)
    capacity = SETS * WAYS
    return [
        np.arange(N),                                   # sequential scan
        np.arange(N) * 3 + 10_000_000,                  # strided scan
        rng.integers(0, capacity // 2, N),              # reuse-heavy
        rng.integers(0, 4 * capacity, N),               # uniform scatter
    ]


def test_stackdist_vs_fastcache_on_long_streams(best_of, micro_baselines):
    cfg = CacheConfig(SETS * WAYS * 64, WAYS, 1, 4)
    streams = _streams()

    def run_fast() -> None:
        for lines in streams:
            FastCache(cfg).lookup_lines(lines)

    def run_stackdist() -> None:
        for lines in streams:
            stackdist.hit_mask(lines, SETS, WAYS)

    stateful = best_of(run_fast)
    offline = best_of(run_stackdist)
    ratio = stateful / offline
    floor = micro_baselines["stackdist_lookup_min_ratio"]
    assert ratio >= floor, (
        f"stack-distance hit_mask speedup regressed: {ratio:.2f}x < "
        f"{floor}x vs FastCache on long streams")
