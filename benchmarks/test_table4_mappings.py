"""Regenerate Table 4: every kernel's TMU mapping runs and is correct.

This benchmark exercises the *functional* engine on every Table 4 row:
the program builds within the engine's lane/layer/storage budget, runs
to completion, and computes the same result as the golden software
kernel.
"""

import numpy as np

from repro.eval.reporting import text_table
from repro.fibers.fiber import Fiber
from repro.formats.convert import coo_to_csf
from repro.generators import uniform_random_matrix, uniform_random_tensor
from repro.kernels import (
    split_rows_cyclic,
    sptc_symbolic,
    spttm,
    spttv,
    triangle_count,
)
from repro.kernels.triangle import lower_triangle
from repro.programs import (
    build_mttkrp_program,
    build_spkadd_program,
    build_spmm_program,
    build_spmspm_program,
    build_spmspv_program,
    build_spmv_program,
    build_sptc_program,
    build_spttm_program,
    build_spttv_program,
    build_triangle_program,
)
from repro.tmu import TmuEngine

from .conftest import save_artifact


def _run_all():
    rng = np.random.default_rng(0)
    a = uniform_random_matrix(40, 40, 4, seed=31)
    b = rng.random(40)
    t = uniform_random_tensor((12, 10, 8), 150, seed=32)
    csf = coo_to_csf(t)
    csf_b = coo_to_csf(uniform_random_tensor((8, 10, 9), 150, seed=33))
    bf = rng.random((10, 5))
    cf = rng.random((8, 5))
    bm = rng.random((40, 6))
    tm = rng.random((8, 4))
    sv_idx = np.sort(rng.choice(40, 9, replace=False))
    sv = Fiber(sv_idx, rng.random(9))
    lt = lower_triangle(uniform_random_matrix(40, 40, 5, seed=34))
    parts = split_rows_cyclic(a, 8)
    tv = rng.random(8)
    ttv_ref = spttv(csf, tv)
    ttm_ref = spttm(csf, tm)

    cases = [
        ("SpMV P0", build_spmv_program(a, b, lanes=1),
         lambda out: np.allclose(out, a.to_dense() @ b)),
        ("SpMV P1", build_spmv_program(a, b, lanes=8),
         lambda out: np.allclose(out, a.to_dense() @ b)),
        ("SpMSpV", build_spmspv_program(a, sv),
         lambda out: np.allclose(out, a.to_dense() @ sv.to_dense(40))),
        ("SpMM P0", build_spmm_program(a, bm, lanes=1),
         lambda out: np.allclose(out, a.to_dense() @ bm)),
        ("SpMM P1", build_spmm_program(a, bm, lanes=4),
         lambda out: np.allclose(out, a.to_dense() @ bm)),
        ("SpMM P2", build_spmm_program(a, bm, lanes=8),
         lambda out: np.allclose(out, a.to_dense() @ bm)),
        ("SpMSpM P0", build_spmspm_program(a, a.transpose(), lanes=1),
         lambda out: np.allclose(out.to_dense(),
                                 a.to_dense() @ a.to_dense().T)),
        ("SpMSpM P2", build_spmspm_program(a, a.transpose(), lanes=8),
         lambda out: np.allclose(out.to_dense(),
                                 a.to_dense() @ a.to_dense().T)),
        ("SpKAdd", build_spkadd_program(parts),
         lambda out: np.allclose(out.to_dense(),
                                 sum(p.to_dense() for p in parts))),
        ("PageRank", build_spmv_program(a, b, lanes=8, name="pr"),
         lambda out: np.allclose(out, a.to_dense() @ b)),
        ("TriangleCount", build_triangle_program(lt),
         lambda out: out == triangle_count(lt)),
        ("MTTKRP P1", build_mttkrp_program(t, bf, cf),
         lambda out: np.allclose(out, np.einsum(
             "ikl,kj,lj->ij", t.to_dense(), bf, cf))),
        ("MTTKRP P2", build_mttkrp_program(t, bf, cf, name="mttkrp_p2"),
         lambda out: np.allclose(out, np.einsum(
             "ikl,kj,lj->ij", t.to_dense(), bf, cf))),
        ("SpTC", build_sptc_program(csf, csf_b),
         lambda out: np.array_equal(out, sptc_symbolic(csf, csf_b))),
        ("SpTTV", build_spttv_program(csf, tv),
         lambda out: all(np.isclose(out[k], ttv_ref[k])
                         for k in ttv_ref) and set(out) == set(ttv_ref)),
        ("SpTTM", build_spttm_program(csf, tm),
         lambda out: all(np.allclose(out[k], ttm_ref[k])
                         for k in ttm_ref) and set(out) == set(ttm_ref)),
    ]

    rows = []
    for name, built, check in cases:
        engine = TmuEngine(built.program)
        stats = engine.run(built.handlers)
        out = built.result()
        ok = bool(check(out)) if check is not None else True
        rows.append([
            name,
            len(built.program.layers),
            built.program.lanes,
            built.program.layers[-1].mode.value,
            stats.total_iterations,
            stats.outq_records,
            "PASS" if ok else "FAIL",
        ])
        assert ok, f"{name} functional mismatch"
    return rows


def test_table4_mappings(benchmark, results_dir):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    save_artifact(
        results_dir, "table4_mappings.txt",
        text_table(
            ["kernel", "layers", "lanes", "last-layer mode",
             "TU iterations", "outQ records", "functional"],
            rows,
            "Table 4: kernel-to-TMU mappings (functional verification)",
        ))
    assert all(r[-1] == "PASS" for r in rows)
    assert len(rows) == 16  # all Table 4 rows exercised
