"""Regenerate Figure 12: roofline models."""

from repro.eval import experiments as ex

from .conftest import save_artifact


def test_fig12_roofline(benchmark, results_dir, scale):
    data = benchmark.pedantic(
        ex.fig12_roofline, args=(scale,), rounds=1, iterations=1)
    save_artifact(results_dir, "fig12_roofline.txt",
                  ex.render_fig12(data))

    peak_bw = data["peak_bandwidth_gbps"]
    peak_gf = data["peak_gflops"]
    assert peak_bw == 150.0  # 4 x 37.5 GB/s (Table 5)

    def point(panel, label_part, system):
        for p in data["panels"][panel]:
            if label_part in p.label and p.label.endswith(system):
                return p
        raise AssertionError(f"missing point {label_part}/{system}")

    # Panel (a): every point stays under the roofline.
    for p in data["panels"]["a"]:
        ceiling = min(peak_gf, peak_bw * p.arithmetic_intensity)
        assert p.gflops <= ceiling * 1.15, p

    # Paper shape: baseline SVE versions use a small fraction of the
    # bandwidth; TMU versions get close to the bandwidth roof.
    spmv_base = point("a", "spmv", "baseline")
    spmv_tmu = point("a", "spmv", "tmu")
    assert spmv_base.bandwidth_gbps < 0.45 * peak_bw
    assert spmv_tmu.bandwidth_gbps > 0.6 * peak_bw
    assert spmv_tmu.bandwidth_gbps > 2.0 * spmv_base.bandwidth_gbps

    # SpMSpM cannot use as much bandwidth as SpMV: compute-bound.
    spmspm_tmu = point("a", "spmspm", "tmu")
    assert spmspm_tmu.bandwidth_gbps < spmv_tmu.bandwidth_gbps

    # The dashed nnz/row ceilings of panel (c) increase with density.
    ceilings = data["nnz_per_row_ceilings"]
    assert ceilings[1] < ceilings[8] < ceilings[64]


def test_fig12c_ceiling_matrices(benchmark, results_dir, scale):
    """The synthetic fixed-nnz/row matrices behind panel (c)."""
    measured = benchmark.pedantic(
        ex.fig12_ceiling_matrices, args=(scale,), rounds=1, iterations=1)
    lines = [f"n={n}: {v:.2f} GFLOP/s (measured SpMSpM baseline)"
             for n, v in measured.items()]
    save_artifact(results_dir, "fig12c_ceilings.txt", "\n".join(lines))
    # throughput grows with nnz/row: more flops per traversal byte
    assert measured[1] < measured[8] < measured[64]
