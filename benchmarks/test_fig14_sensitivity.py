"""Regenerate Figure 14: storage x SVE-width sensitivity heatmaps."""

import numpy as np

from repro.eval import experiments as ex
from repro.eval.experiments import FIG14_STORAGE_KB, FIG14_SVE_BITS

from .conftest import save_artifact


def test_fig14_sensitivity(benchmark, results_dir, scale):
    data = benchmark.pedantic(
        ex.fig14_sensitivity, args=(scale,), rounds=1, iterations=1)
    save_artifact(results_dir, "fig14_sensitivity.txt",
                  ex.render_fig14(data))

    spmv = data["spmv"]
    spmspm = data["spmspm"]
    i16 = FIG14_STORAGE_KB.index(16)
    j512 = FIG14_SVE_BITS.index(512)
    i4 = FIG14_STORAGE_KB.index(4)
    j128 = FIG14_SVE_BITS.index(128)

    # Reference cell is 1.0 by construction.
    assert spmv[i16, j512] == 1.0
    assert spmspm[i16, j512] == 1.0

    # Paper shape: SpMV is storage-sensitive — shrinking the engine to
    # 4 KB costs performance at the evaluated SVE width.
    assert spmv[i4, j512] < 0.95

    # Paper shape: SpMSpM is SVE-width-sensitive (the bottleneck is the
    # core side, read-to-write ratio 1.68) ...
    assert spmspm[i16, j128] < 0.85
    # ... and storage-insensitive: the storage column barely moves it.
    storage_swing = spmspm[:, j512].max() - spmspm[:, j512].min()
    assert storage_swing < 0.1

    # Width hurts SpMSpM more than it hurts SpMV's storage-fed regime.
    spmv_width_swing = spmv[i16, j512] - spmv[i16, j128]
    spmspm_width_swing = spmspm[i16, j512] - spmspm[i16, j128]
    assert spmspm_width_swing >= spmv_width_swing * 0.9

    # Monotonicity: more storage never hurts either workload.
    for grid in (spmv, spmspm):
        for j in range(grid.shape[1]):
            col = grid[:, j]
            assert np.all(np.diff(col) >= -1e-9)
