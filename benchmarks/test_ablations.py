"""Ablation studies on the TMU design choices DESIGN.md calls out.

Not figures from the paper — these probe the *model's* sensitivity to
its own design parameters, the analyses a reviewer would ask for:

* merge-on-engine vs merge-on-core (what the DisjMrg hardware buys);
* outQ chunk size (the double-buffering/pipeline-fill trade-off);
* outstanding-request budget (the decoupling depth, Section 5.6);
* engine placement sanity: reading from a scaled-down LLC vs a cold
  one (locality captured by the shared cache, Section 5.6).
"""

from repro.config import experiment_machine
from repro.eval.reporting import text_table
from repro.eval.workloads import SAMPLE_WINDOW, SPKADD_K
from repro.generators import load_matrix
from repro.kernels import split_rows_cyclic
from repro.programs import spkadd_timing_model, spmv_timing_model
from repro.sim.machine import run_tmu

from .conftest import save_artifact


def _ablate():
    machine = experiment_machine("small")
    matrix = load_matrix("M2", "small")
    spmv_model = spmv_timing_model(matrix, machine)
    spkadd_model = spkadd_timing_model(
        split_rows_cyclic(matrix, SPKADD_K), machine)
    rows = []

    # 1. merge hardware: SpKAdd with and without on-engine merging.
    with_merge = run_tmu(spkadd_model, machine,
                         sample_window=SAMPLE_WINDOW)
    rows.append(["spkadd", "merge on engine",
                 int(with_merge.tmu_cycles)])
    without = run_tmu(spkadd_model, machine, merge_on_engine=False,
                      sample_window=SAMPLE_WINDOW)
    rows.append(["spkadd", "merge off engine (traversal only)",
                 int(without.tmu_cycles)])

    # 2. outQ chunk size: fill latency shrinks with smaller chunks.
    chunk_cycles = {}
    for chunk in (1024, 4096, 16384, 65536):
        m = machine.with_tmu(outq_chunk_bytes=chunk)
        result = run_tmu(spmv_model, m, sample_window=SAMPLE_WINDOW)
        chunk_cycles[chunk] = result.cycles
        rows.append(["spmv", f"outQ chunk {chunk}B",
                     int(result.cycles)])

    # 3. outstanding requests: decoupling depth.
    outstanding_cycles = {}
    for outstanding in (16, 32, 64, 128, 256):
        m = machine.with_tmu(outstanding_requests=outstanding)
        result = run_tmu(spmv_model, m, sample_window=SAMPLE_WINDOW)
        outstanding_cycles[outstanding] = result.cycles
        rows.append(["spmv", f"{outstanding} outstanding requests",
                     int(result.cycles)])

    return rows, with_merge, without, chunk_cycles, outstanding_cycles


def test_design_ablations(benchmark, results_dir):
    rows, with_merge, without, chunks, outstanding = benchmark.pedantic(
        _ablate, rounds=1, iterations=1)
    save_artifact(results_dir, "ablations.txt", text_table(
        ["workload", "configuration", "TMU-system cycles"], rows,
        "Design-choice ablations"))

    # The merge network is pure win for SpKAdd's producer side: without
    # it the engine only traverses, but the core would then have to
    # merge — the engine-side time can only drop, never rise.
    assert without.tmu_cycles <= with_merge.tmu_cycles

    # Larger chunks cost pipeline fill: monotonically non-decreasing.
    sizes = sorted(chunks)
    assert all(chunks[a] <= chunks[b] + 1e-9
               for a, b in zip(sizes, sizes[1:]))

    # More outstanding requests never hurt; the curve saturates once
    # the bandwidth floor binds.
    outs = sorted(outstanding)
    assert all(outstanding[a] >= outstanding[b] - 1e-9
               for a, b in zip(outs, outs[1:]))
    assert outstanding[128] == outstanding[256]  # saturated


def _core_scaling_study():
    """Core-count scaling of the TMU-accelerated SpMV (the knee sits on
    the shared bandwidth wall the Figure 12 rooflines show)."""
    from repro.sim.parallel import core_scaling

    machine = experiment_machine("small")
    matrix = load_matrix("M2", "small")
    model = spmv_timing_model(matrix, machine)
    tmu = run_tmu(model, machine, sample_window=SAMPLE_WINDOW)
    per_core_bytes = tmu.breakdown.mem_bytes
    curve = core_scaling(machine, per_core_cycles=tmu.cycles,
                         per_core_mem_bytes=per_core_bytes,
                         core_counts=(1, 2, 4, 8, 16, 32))
    return curve


def test_core_scaling(benchmark, results_dir):
    curve = benchmark.pedantic(_core_scaling_study, rounds=1,
                               iterations=1)
    rows = [[c, f"{s:.2f}x"] for c, s in sorted(curve.items())]
    save_artifact(results_dir, "ablation_core_scaling.txt", text_table(
        ["cores", "speedup over 1 core"], rows,
        "TMU SpMV core-count scaling (shared-bandwidth wall)"))
    # monotone non-decreasing, saturating at the bandwidth wall
    cores = sorted(curve)
    assert all(curve[a] <= curve[b] + 1e-9
               for a, b in zip(cores, cores[1:]))
    assert curve[32] == curve[16] or curve[32] / curve[16] < 1.3
