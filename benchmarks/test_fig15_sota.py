"""Regenerate Figure 15: IMP vs Single-Lane vs TMU."""

from repro.eval import experiments as ex
from repro.types import geomean

from .conftest import save_artifact


def test_fig15_state_of_the_art(benchmark, results_dir, scale):
    data = benchmark.pedantic(
        ex.fig15_state_of_the_art, args=(scale,), rounds=1, iterations=1)
    save_artifact(results_dir, "fig15_sota.txt", ex.render_fig15(data))

    assert set(data) >= {"spmv", "spmspm"}
    geo = {
        (wl, sys): geomean(inputs[i][sys] for i in inputs)
        for wl, inputs in data.items()
        for sys in ("imp", "single_lane", "tmu")
    }

    # Paper: TMU 3.32x / Single-Lane 1.59x / IMP 1.25x on SpMV.
    assert geo[("spmv", "tmu")] > geo[("spmv", "single_lane")]
    assert geo[("spmv", "single_lane")] > geo[("spmv", "imp")] * 0.95
    assert 1.0 <= geo[("spmv", "imp")] < 1.8
    assert 1.1 < geo[("spmv", "single_lane")] < 2.3
    assert 2.3 < geo[("spmv", "tmu")] < 5.0

    # Paper: IMP fails to deliver on SpMSpM (partial-result thrashing);
    # Single-Lane 1.50x; TMU 2.82x.
    assert geo[("spmspm", "imp")] <= 1.05
    assert 1.0 < geo[("spmspm", "single_lane")] < 2.6
    assert geo[("spmspm", "tmu")] > geo[("spmspm", "single_lane")]

    # Per input, the TMU never loses to the single-lane engine.
    for wl, inputs in data.items():
        for input_id, systems in inputs.items():
            assert systems["tmu"] >= systems["single_lane"] - 1e-9, (
                wl, input_id)
