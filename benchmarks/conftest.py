"""Benchmark harness configuration.

Each benchmark regenerates one table or figure of the paper at the
``small`` scale, asserts the qualitative *shape* the paper reports
(who wins, by roughly what factor, where the crossovers fall), and
writes the rendered artifact to ``benchmarks/results/``.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def scale() -> str:
    return "small"


@pytest.fixture(scope="session", autouse=True)
def runtime_cache(tmp_path_factory):
    """One shared on-disk result cache for the whole benchmark session.

    Every figure driver submits its cells through the active
    :mod:`repro.runtime`, so benchmarks that revisit the same
    (workload, input, machine) cells — Fig. 10/11/12/13 share a full
    sweep — are served from this cache instead of re-simulating.
    """
    from repro import runtime

    cache_dir = tmp_path_factory.mktemp("repro-runtime-cache")
    rt = runtime.configure(jobs=1, cache_dir=cache_dir)
    yield rt.cache
    runtime.reset()


def save_artifact(results_dir: Path, name: str, text: str) -> None:
    (results_dir / name).write_text(text + "\n", encoding="utf-8")
