"""Benchmark harness configuration.

Each benchmark regenerates one table or figure of the paper at the
``small`` scale, asserts the qualitative *shape* the paper reports
(who wins, by roughly what factor, where the crossovers fall), and
writes the rendered artifact to ``benchmarks/results/``.

Run with::

    pytest benchmarks/ --benchmark-only

The session also captures :mod:`repro.obs` telemetry and appends a perf
snapshot to the repo's trajectory (``BENCH_<rev>.json`` at the repo
root) when it finishes; set ``REPRO_BENCH_SNAPSHOT=0`` to skip, or
``REPRO_BENCH_DIR`` to redirect the snapshot.  ``REPRO_CACHE_DIR``
points the session's result cache at a persistent directory (CI uses
this to carry the cache across jobs); by default a temp dir is used.
``REPRO_STORE`` names an experiment database (:mod:`repro.store`);
when set, the session snapshot is also ingested there so CI can gate
on ``repro query regressions`` straight after the benchmark run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def scale() -> str:
    return "small"


@pytest.fixture(scope="session", autouse=True)
def telemetry_session():
    """Record simulator telemetry for the whole benchmark session and
    extend the perf trajectory on exit.

    The snapshot is filed under ``BENCH_<rev>.json``; when ``git`` is
    unavailable the rev falls back to ``unknown``, and a modified
    worktree gets a ``-dirty`` suffix so a perf point is never
    misattributed to a clean commit.
    """
    from repro import obs

    if os.environ.get("REPRO_BENCH_SNAPSHOT", "1") == "0":
        yield None
        return
    registry = obs.enable()
    yield registry
    snap = obs.snapshot(meta={"suite": "benchmarks", "scale": "small",
                              "rev": obs.bench_rev()})
    obs.disable()
    out_dir = Path(os.environ.get("REPRO_BENCH_DIR", REPO_ROOT))
    path = obs.write_bench_snapshot(snap, out_dir)
    print(f"\nperf trajectory snapshot: {path}")
    store_path = os.environ.get("REPRO_STORE")
    if store_path:
        from repro.errors import ReproError
        from repro.store import ExperimentStore, ingest_snapshot

        try:
            with ExperimentStore(store_path) as db:
                ingest_snapshot(db, snap, kind="bench",
                                source=str(path))
            print(f"ingested into experiment store: {store_path}")
        except ReproError as exc:
            print(f"store ingest failed: {exc}")


@pytest.fixture(scope="session", autouse=True)
def runtime_cache(tmp_path_factory):
    """One shared on-disk result cache for the whole benchmark session.

    Every figure driver submits its cells through the active
    :mod:`repro.runtime`, so benchmarks that revisit the same
    (workload, input, machine) cells — Fig. 10/11/12/13 share a full
    sweep — are served from this cache instead of re-simulating.

    ``REPRO_CACHE_DIR`` overrides the location so CI can persist the
    cache across jobs; unset, each session gets a fresh temp dir.
    """
    from repro import runtime

    env_dir = os.environ.get("REPRO_CACHE_DIR")
    if env_dir:
        cache_dir = Path(env_dir)
        cache_dir.mkdir(parents=True, exist_ok=True)
    else:
        cache_dir = tmp_path_factory.mktemp("repro-runtime-cache")
    rt = runtime.configure(jobs=1, cache_dir=cache_dir)
    yield rt.cache
    runtime.reset()


def save_artifact(results_dir: Path, name: str, text: str) -> None:
    (results_dir / name).write_text(text + "\n", encoding="utf-8")
