"""Benchmark harness configuration.

Each benchmark regenerates one table or figure of the paper at the
``small`` scale, asserts the qualitative *shape* the paper reports
(who wins, by roughly what factor, where the crossovers fall), and
writes the rendered artifact to ``benchmarks/results/``.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def scale() -> str:
    return "small"


def save_artifact(results_dir: Path, name: str, text: str) -> None:
    (results_dir / name).write_text(text + "\n", encoding="utf-8")
