"""Regenerate Figure 10: TMU speedups over the software baselines."""

from repro.eval import experiments as ex

from .conftest import save_artifact


def test_fig10_speedups(benchmark, results_dir, scale):
    data = benchmark.pedantic(
        ex.fig10_speedups, args=(scale,), rounds=1, iterations=1)
    save_artifact(results_dir, "fig10_speedups.txt",
                  ex.render_fig10(data))

    geomeans = data["geomeans"]
    categories = data["categories"]

    # The TMU wins on every workload.
    for workload, value in geomeans.items():
        assert value > 1.0, (workload, value)

    # Headline factors (paper: memory 3.58x, compute 2.82x, merge
    # 4.94x) — the shape must hold within a factor-of-~1.6 band.
    assert 2.2 < categories["memory"] < 5.5
    assert 1.8 < categories["compute"] < 5.5
    assert 3.0 < categories["merge"] < 8.0

    # Merge-intensive kernels benefit the most (the paper's ordering).
    assert categories["merge"] > categories["memory"]
    assert categories["merge"] > categories["compute"]

    # SpKAdd is the biggest single winner among matrix kernels, as in
    # the paper (6.98x there).
    assert geomeans["spkadd"] >= max(geomeans["spmv"],
                                     geomeans["spmspm"])

    # Per-input spread stays in a plausible band (paper: 1.58-6.98).
    for workload, vals in data["per_workload"].items():
        for input_id, speedup in vals.items():
            assert 0.9 < speedup < 14.0, (workload, input_id, speedup)
