"""Regenerate Figure 11: cycle breakdowns and load-to-use latency."""

import numpy as np

from repro.eval import experiments as ex
from repro.types import geomean

from .conftest import save_artifact


def test_fig11_breakdown(benchmark, results_dir, scale):
    rows = benchmark.pedantic(
        ex.fig11_breakdown, args=(scale,), rounds=1, iterations=1)
    save_artifact(results_dir, "fig11_breakdown.txt",
                  ex.render_fig11(rows))

    def rows_of(workload, system):
        return [r for r in rows
                if r["workload"] == workload and r["system"] == system]

    # Paper shape: the TMU drastically reduces backend stalls on the
    # memory-intensive workloads.
    for workload in ("spmv", "pr"):
        be_base = np.mean([r["backend"] for r in rows_of(workload,
                                                         "baseline")])
        l2u_base = geomean(
            r["load_to_use"] for r in rows_of(workload, "baseline"))
        l2u_tmu = geomean(
            r["load_to_use"] for r in rows_of(workload, "tmu"))
        # load-to-use drops sharply (paper: 67 -> 23 cycles on M1)
        assert l2u_tmu < 0.8 * l2u_base, workload
        assert be_base > 0.35, workload

    # Frontend stalls are almost eliminated by the TMU everywhere
    # (callback dispatch is predictable).
    for workload in ("spmv", "spkadd", "tc"):
        fe_tmu = np.mean([r["frontend"] for r in rows_of(workload,
                                                         "tmu")])
        assert fe_tmu < 0.05, workload

    # Merge-intensive baselines pay heavy frontend costs the TMU
    # removes (TC/SpKAdd in the paper).
    for workload in ("spkadd", "tc"):
        fe_base = np.mean([r["frontend"] for r in rows_of(workload,
                                                          "baseline")])
        fe_tmu = np.mean([r["frontend"] for r in rows_of(workload,
                                                         "tmu")])
        assert fe_base > 4 * fe_tmu, workload

    # SpMSpM keeps a large committing share: it is compute-bound
    # (Amdahl limits the TMU there, as the paper discusses).
    commit_tmu = np.mean([r["committing"] for r in rows_of("spmspm",
                                                           "tmu")])
    assert commit_tmu > 0.3
